// Tests for src/linalg: Matrix, GEMM variants, Cholesky, Kronecker algebra.
//
// The Kronecker identities proven here are exactly the ones K-FAC relies on:
//   (A ⊗ B)⁻¹ = A⁻¹ ⊗ B⁻¹   and   (A ⊗ B) vec(X) = vec(B X Aᵀ).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/gemm.h"
#include "src/linalg/kron.h"
#include "src/linalg/matrix.h"

namespace pf {
namespace {

Matrix random_spd(std::size_t n, Rng& rng, double damping = 0.5) {
  const Matrix u = Matrix::randn(n, n, rng);
  Matrix spd = matmul_tn(u, u);
  spd *= 1.0 / static_cast<double>(n);
  add_diagonal(spd, damping);
  return spd;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Rng rng(5);
  const Matrix a = Matrix::randn(3, 4, rng);
  const Matrix at = a.transposed();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(at(c, r), a(r, c));
}

TEST(Matrix, ElementwiseOps) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  a.axpby(0.5, b, 0.1);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5 * 2.0 + 0.1 * 10.0);
}

TEST(Matrix, Reductions) {
  const Matrix a = Matrix::from_rows({{3, -4}, {0, 0}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), -1.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Gemm, MatchesHandComputedProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::from_rows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Gemm, TnAndNtAgreeWithExplicitTranspose) {
  Rng rng(21);
  const Matrix a = Matrix::randn(7, 5, rng);
  const Matrix b = Matrix::randn(7, 4, rng);
  EXPECT_LT(max_abs_diff(matmul_tn(a, b), matmul(a.transposed(), b)), 1e-12);
  const Matrix c = Matrix::randn(6, 5, rng);
  const Matrix d = Matrix::randn(9, 5, rng);
  EXPECT_LT(max_abs_diff(matmul_nt(c, d), matmul(c, d.transposed())), 1e-12);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(23);
  const Matrix a = Matrix::randn(8, 8, rng);
  EXPECT_LT(max_abs_diff(matmul(a, Matrix::identity(8)), a), 1e-14);
  EXPECT_LT(max_abs_diff(matmul(Matrix::identity(8), a), a), 1e-14);
}

TEST(Gemm, AccumulationAddsAlphaTimesProduct) {
  Rng rng(29);
  const Matrix a = Matrix::randn(4, 3, rng);
  const Matrix b = Matrix::randn(3, 5, rng);
  Matrix c(4, 5, 1.0);
  matmul_acc(a, b, c, 2.0);
  Matrix expect = matmul(a, b);
  expect *= 2.0;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t col = 0; col < 5; ++col)
      EXPECT_NEAR(c(r, col), expect(r, col) + 1.0, 1e-12);
}

TEST(Gemm, BlockedMatchesNaiveOnLargerSizes) {
  // Exercises the kBlock tiling boundaries (sizes straddling 64).
  Rng rng(31);
  const Matrix a = Matrix::randn(65, 130, rng);
  const Matrix b = Matrix::randn(130, 67, rng);
  const Matrix c = matmul(a, b);
  // Naive reference.
  Matrix ref(65, 67, 0.0);
  for (std::size_t i = 0; i < 65; ++i)
    for (std::size_t k = 0; k < 130; ++k)
      for (std::size_t j = 0; j < 67; ++j) ref(i, j) += a(i, k) * b(k, j);
  EXPECT_LT(max_abs_diff(c, ref), 1e-10);
}

// The parallel kernels promise bitwise-identical results to the serial path
// (gemm.h): row blocks only partition the output, never reorder the
// per-element accumulation. Verified with exact equality, not a tolerance.
TEST(GemmParallel, AllVariantsBitwiseEqualSerialAcrossThreadCounts) {
  Rng rng(71);
  const Matrix a = Matrix::randn(97, 43, rng);
  const Matrix b = Matrix::randn(43, 71, rng);
  const Matrix t = Matrix::randn(97, 71, rng);   // for tn: (97x43)ᵀ·(97x71)
  const Matrix n = Matrix::randn(51, 43, rng);   // for nt: (97x43)·(51x43)ᵀ
  const Matrix s_nn = matmul(a, b, 1);
  const Matrix s_tn = matmul_tn(a, t, 1);
  const Matrix s_nt = matmul_nt(a, n, 1);
  for (int threads : {2, 3, 7, 16, 64}) {
    EXPECT_EQ(max_abs_diff(matmul(a, b, threads), s_nn), 0.0)
        << "matmul threads=" << threads;
    EXPECT_EQ(max_abs_diff(matmul_tn(a, t, threads), s_tn), 0.0)
        << "matmul_tn threads=" << threads;
    EXPECT_EQ(max_abs_diff(matmul_nt(a, n, threads), s_nt), 0.0)
        << "matmul_nt threads=" << threads;
  }
}

TEST(GemmParallel, AccumulatingVariantsBitwiseEqualSerial) {
  Rng rng(73);
  const Matrix a = Matrix::randn(66, 30, rng);
  const Matrix b = Matrix::randn(30, 20, rng);
  Matrix serial(66, 20, 0.5), parallel(66, 20, 0.5);
  matmul_acc(a, b, serial, 1.7, 1);
  matmul_acc(a, b, parallel, 1.7, 5);
  EXPECT_EQ(max_abs_diff(serial, parallel), 0.0);

  const Matrix dy = Matrix::randn(66, 20, rng);
  Matrix s_tn(30, 20, -1.0), p_tn(30, 20, -1.0);
  matmul_tn_acc(a, dy, s_tn, 0.25, 1);
  matmul_tn_acc(a, dy, p_tn, 0.25, 4);
  EXPECT_EQ(max_abs_diff(s_tn, p_tn), 0.0);

  const Matrix c = Matrix::randn(20, 30, rng);
  Matrix s_nt(66, 20, 2.0), p_nt(66, 20, 2.0);
  matmul_nt_acc(a, c, s_nt, -3.0, 1);
  matmul_nt_acc(a, c, p_nt, -3.0, 8);
  EXPECT_EQ(max_abs_diff(s_nt, p_nt), 0.0);
}

TEST(GemmParallel, GlobalThreadKnobSelectsParallelPath) {
  Rng rng(79);
  const Matrix a = Matrix::randn(40, 25, rng);
  const Matrix b = Matrix::randn(25, 33, rng);
  const Matrix serial = matmul(a, b, 1);
  EXPECT_EQ(gemm_threads(), 1);  // seed default: serial
  set_gemm_threads(4);
  EXPECT_EQ(gemm_threads(), 4);
  const Matrix via_knob = matmul(a, b);  // threads=0 → global default
  set_gemm_threads(1);
  EXPECT_EQ(max_abs_diff(via_knob, serial), 0.0);
  // The knob floors at 1: "0 threads" is not a meaningful request.
  set_gemm_threads(-3);
  EXPECT_EQ(gemm_threads(), 1);
}

TEST(GemmParallel, ShapeMismatchThrowsOnThreadedPath) {
  Matrix a(4, 3), b(5, 6), c(4, 6);
  EXPECT_THROW(matmul(a, b, 4), Error);
  EXPECT_THROW(matmul_tn(a, b, 4), Error);
  EXPECT_THROW(matmul_nt(a, b, 4), Error);
  Matrix bad_c(3, 6);
  Matrix b_ok(3, 6);
  EXPECT_THROW(matmul_acc(a, b_ok, bad_c, 1.0, 4), Error);
}

TEST(GemmParallel, ZeroSizedAndSingleRowEdgeCases) {
  // threads far exceeding the row count must clamp, not crash; empty
  // operands must yield empty/zero results on both paths.
  Rng rng(83);
  for (int threads : {1, 8}) {
    const Matrix e0 = matmul(Matrix(0, 5), Matrix(5, 3), threads);
    EXPECT_EQ(e0.rows(), 0u);
    EXPECT_EQ(e0.cols(), 3u);
    const Matrix e1 = matmul(Matrix(3, 0), Matrix(0, 2), threads);
    EXPECT_EQ(e1.rows(), 3u);
    EXPECT_EQ(e1.cols(), 2u);
    EXPECT_DOUBLE_EQ(e1.max_abs(), 0.0);  // empty K: all-zero accumulators

    const Matrix row = Matrix::randn(1, 9, rng);
    const Matrix w = Matrix::randn(9, 4, rng);
    EXPECT_EQ(max_abs_diff(matmul(row, w, threads), matmul(row, w, 1)), 0.0);
    const Matrix col = Matrix::randn(9, 1, rng);
    const Matrix tn = matmul_tn(col, Matrix::randn(9, 6, rng), threads);
    EXPECT_EQ(tn.rows(), 1u);
    const Matrix nt = matmul_nt(row, Matrix::randn(1, 9, rng), threads);
    EXPECT_EQ(nt.cols(), 1u);
  }
}

TEST(Gemm, Matvec) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const auto y = matvec(a, {1.0, -1.0});
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Cholesky, ReconstructsInput) {
  Rng rng(37);
  for (std::size_t n : {1u, 2u, 5u, 16u, 33u}) {
    const Matrix m = random_spd(n, rng);
    const Matrix l = cholesky(m);
    EXPECT_LT(max_abs_diff(matmul_nt(l, l), m), 1e-10) << "n=" << n;
  }
}

TEST(Cholesky, LowerTriangular) {
  Rng rng(41);
  const Matrix l = cholesky(random_spd(6, rng));
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = r + 1; c < 6; ++c) EXPECT_DOUBLE_EQ(l(r, c), 0.0);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  Matrix m = Matrix::identity(3);
  m(2, 2) = -1.0;
  EXPECT_FALSE(try_cholesky(m).has_value());
  EXPECT_THROW(cholesky(m), Error);
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  Rng rng(43);
  const Matrix m = random_spd(12, rng);
  std::vector<double> x_true(12);
  for (auto& v : x_true) v = rng.normal();
  const auto b = matvec(m, x_true);
  const auto x = cholesky_solve(cholesky(m), b);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Cholesky, InverseTimesInputIsIdentity) {
  Rng rng(47);
  for (std::size_t n : {2u, 8u, 24u}) {
    const Matrix m = random_spd(n, rng);
    const Matrix inv = cholesky_inverse(cholesky(m));
    EXPECT_LT(max_abs_diff(matmul(inv, m), Matrix::identity(n)), 1e-8)
        << "n=" << n;
  }
}

TEST(Cholesky, SpdInverseAppliesDamping) {
  // (I + damping·I)⁻¹ = 1/(1+damping)·I.
  const Matrix inv = spd_inverse(Matrix::identity(4), 1.0);
  EXPECT_LT(max_abs_diff(inv, Matrix::identity(4) * 0.5), 1e-12);
}

TEST(Kron, MatchesDefinitionOnSmallExample) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{0, 5}, {6, 7}});
  const Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00*b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00*b10
  EXPECT_DOUBLE_EQ(k(3, 2), 4 * 6);  // a11*b10
  EXPECT_DOUBLE_EQ(k(2, 3), 4 * 5);  // a11*b01
}

TEST(Kron, MixedProductProperty) {
  // (A⊗B)(C⊗D) = (AC)⊗(BD).
  Rng rng(53);
  const Matrix a = Matrix::randn(3, 3, rng), b = Matrix::randn(2, 2, rng);
  const Matrix c = Matrix::randn(3, 3, rng), d = Matrix::randn(2, 2, rng);
  const Matrix lhs = matmul(kron(a, b), kron(c, d));
  const Matrix rhs = kron(matmul(a, c), matmul(b, d));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-10);
}

TEST(Kron, InverseOfKronIsKronOfInverses) {
  // The identity that makes K-FAC tractable.
  Rng rng(59);
  const Matrix a = random_spd(3, rng);
  const Matrix b = random_spd(4, rng);
  const Matrix lhs = spd_inverse(kron(a, b));
  const Matrix rhs = kron(spd_inverse(a), spd_inverse(b));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-7);
}

TEST(Kron, KronMatvecEqualsMaterializedProduct) {
  // (A ⊗ B) vec(X) = vec(B X Aᵀ).
  Rng rng(61);
  const Matrix a = Matrix::randn(3, 3, rng);
  const Matrix b = Matrix::randn(4, 4, rng);
  const Matrix x = Matrix::randn(4, 3, rng);
  const auto fast = kron_matvec(a, b, x);
  const auto slow = matvec(kron(a, b), vec_cols(x));
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast[i], slow[i], 1e-10);
}

TEST(Kron, VecUnvecRoundTrip) {
  Rng rng(67);
  const Matrix x = Matrix::randn(5, 7, rng);
  const Matrix back = unvec_cols(vec_cols(x), 5, 7);
  EXPECT_LT(max_abs_diff(x, back), 0.0 + 1e-300);
}

// Property sweep: Cholesky-based preconditioning B⁻¹ G A⁻¹ equals the
// materialized (A ⊗ B)⁻¹ g across shapes — the core K-FAC computation.
class KfacIdentityTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(KfacIdentityTest, PreconditionMatchesMaterializedFisherInverse) {
  const auto [din, dout] = GetParam();
  Rng rng(1000 + din * 31 + dout);
  const Matrix a = random_spd(din, rng);   // A_l (input factor)
  const Matrix b = random_spd(dout, rng);  // B_l (output factor)
  const Matrix g = Matrix::randn(dout, din, rng);  // gradient G_l

  // Fast path: B⁻¹ G A⁻¹.
  const Matrix precond = matmul(matmul(spd_inverse(b), g), spd_inverse(a));
  // Slow path: materialize (A ⊗ B) and solve.
  const Matrix fisher = kron(a, b);
  const auto flat = cholesky_solve(cholesky(fisher), vec_cols(g));
  const Matrix slow = unvec_cols(flat, dout, din);
  EXPECT_LT(max_abs_diff(precond, slow), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KfacIdentityTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{2, 3},
                      std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{6, 2},
                      std::pair<std::size_t, std::size_t>{8, 5},
                      std::pair<std::size_t, std::size_t>{3, 9}));

}  // namespace
}  // namespace pf
