// Tests for src/pipeline: schedule generators and the discrete-event
// simulator. The quantitative assertions mirror the paper's Table 1:
//   GPipe / 1F1B:  C_f = C_b = N + D - 1 (with pipeline flush)
//   Chimera:       C_f = D, C_b = 2D - 2 when N_micro = D
#include <gtest/gtest.h>

#include <set>

#include "src/common/check.h"
#include "src/pipeline/chimera.h"
#include "src/pipeline/gpipe.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/simulator.h"

namespace pf {
namespace {

StepCosts unit_costs(double tb_over_tf = 2.0) {
  StepCosts c;
  c.t_forward = 1.0;
  c.t_backward = tb_over_tf;
  return c;
}

void expect_dependencies_respected(const ScheduleSpec& spec,
                                   const StepSimResult& res,
                                   double t_p2p = 0.0) {
  for (const auto& op : spec.all_ops()) {
    const double start = res.op_start(op);
    if (op.type == OpType::kForward) {
      if (op.stage > 0) {
        const PipeOp dep{OpType::kForward, op.pipeline, op.stage - 1,
                         op.micro};
        EXPECT_GE(start, res.op_end(dep) + t_p2p - 1e-9) << op_debug(op);
      }
    } else {
      const PipeOp fwd{OpType::kForward, op.pipeline, op.stage, op.micro};
      EXPECT_GE(start, res.op_end(fwd) - 1e-9) << op_debug(op);
      if (op.stage < spec.n_stages - 1) {
        const PipeOp dep{OpType::kBackward, op.pipeline, op.stage + 1,
                         op.micro};
        EXPECT_GE(start, res.op_end(dep) + t_p2p - 1e-9) << op_debug(op);
      }
    }
  }
}

TEST(GPipeSchedule, ProgramsAreAllForwardsThenAllBackwards) {
  const auto spec = make_gpipe(4, 4);
  for (const auto& prog : spec.programs) {
    ASSERT_EQ(prog.size(), 8u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(prog[i].type, OpType::kForward);
    for (int i = 4; i < 8; ++i) EXPECT_EQ(prog[i].type, OpType::kBackward);
  }
}

TEST(GPipeSchedule, CriticalPathMatchesTable1) {
  // T_pipe = (N + D - 1)(T_f + T_b).
  for (int d : {2, 4, 8}) {
    for (int n : {2, 4, 8, 16}) {
      const auto res = simulate_step(make_gpipe(d, n), unit_costs());
      const double expect = (n + d - 1) * (1.0 + 2.0);
      EXPECT_NEAR(res.pipe_makespan, expect, 1e-9) << "D=" << d << " N=" << n;
    }
  }
}

TEST(GPipeSchedule, BubbleTimeMatchesTable1) {
  // Per device, bubble = (D-1)(T_f + T_b) within the pipeline window.
  const int D = 4, N = 4;
  const auto res = simulate_step(make_gpipe(D, N), unit_costs());
  for (std::size_t dev = 0; dev < 4; ++dev) {
    EXPECT_NEAR(res.timeline.bubble_time(dev, 0.0, res.pipe_makespan),
                (D - 1) * 3.0, 1e-9);
  }
}

TEST(OneFOneBSchedule, CriticalPathEqualsGPipe) {
  // With a flush, 1F1B has the same critical path as GPipe, only lower
  // activation memory.
  for (int d : {2, 4, 8}) {
    for (int n : {4, 8}) {
      const auto res = simulate_step(make_1f1b(d, n), unit_costs());
      EXPECT_NEAR(res.pipe_makespan, (n + d - 1) * 3.0, 1e-9)
          << "D=" << d << " N=" << n;
    }
  }
}

TEST(OneFOneBSchedule, WarmupDepthDecreasesWithStage) {
  const auto spec = make_1f1b(4, 8);
  // Stage 0 runs 4 warmup forwards; last stage runs 1.
  const auto& p0 = spec.programs[0];
  EXPECT_EQ(p0[0].type, OpType::kForward);
  EXPECT_EQ(p0[3].type, OpType::kForward);
  EXPECT_EQ(p0[4].type, OpType::kBackward);
  const auto& p3 = spec.programs[3];
  EXPECT_EQ(p3[0].type, OpType::kForward);
  EXPECT_EQ(p3[1].type, OpType::kBackward);
}

TEST(OneFOneBSchedule, InFlightMicrobatchesBoundedByDepth) {
  // At any point in stage p's program, (#forwards - #backwards) ≤ D - p:
  // the 1F1B memory guarantee.
  const int D = 8, N = 24;
  const auto spec = make_1f1b(D, N);
  for (int p = 0; p < D; ++p) {
    int in_flight = 0, peak = 0;
    for (const auto& op : spec.programs[static_cast<std::size_t>(p)]) {
      in_flight += op.type == OpType::kForward ? 1 : -1;
      peak = std::max(peak, in_flight);
    }
    EXPECT_LE(peak, D - p);
  }
}

TEST(Simulator, DependenciesRespectedAcrossSchedules) {
  for (double ratio : {1.0, 2.0, 3.0}) {
    for (auto spec : {make_gpipe(4, 8), make_1f1b(4, 8), make_chimera(4, 4),
                      make_chimera(8, 8)}) {
      const auto res = simulate_step(spec, unit_costs(ratio));
      expect_dependencies_respected(spec, res);
    }
  }
}

TEST(Simulator, P2PDelaysDependencies) {
  StepCosts c = unit_costs();
  c.t_p2p = 0.25;
  const auto spec = make_gpipe(4, 4);
  const auto res = simulate_step(spec, c);
  expect_dependencies_respected(spec, res, c.t_p2p);
  EXPECT_NEAR(res.pipe_makespan, (4 + 4 - 1) * 3.0 + 2 * 3 * 0.25, 1e-9);
}

TEST(Simulator, EveryOpExecutedExactlyOnce) {
  for (auto spec : {make_gpipe(4, 8), make_1f1b(8, 8), make_chimera(8, 8)}) {
    const auto res = simulate_step(spec, unit_costs());
    std::size_t executed = 0;
    for (const auto& prog : res.realized_programs) executed += prog.size();
    EXPECT_EQ(executed, spec.all_ops().size()) << spec.name;
    for (const auto& op : spec.all_ops())
      EXPECT_TRUE(res.has_op(op)) << op_debug(op);
  }
}

TEST(Simulator, StaticProgramsExecuteInOrder) {
  const auto spec = make_gpipe(4, 4);
  const auto res = simulate_step(spec, unit_costs());
  EXPECT_EQ(res.realized_programs, spec.programs);
}

TEST(ChimeraSchedule, CriticalPathMatchesTable1) {
  // Chimera: C_f = D forwards and C_b = 2D-2 backwards when N = D.
  for (int d : {4, 8, 16}) {
    const auto res = simulate_step(make_chimera(d, d), unit_costs());
    const double expect = d * 1.0 + (2 * d - 2) * 2.0;
    EXPECT_NEAR(res.pipe_makespan, expect, 1e-9) << "D=" << d;
  }
}

TEST(ChimeraSchedule, HigherUtilizationThanGPipe) {
  // The whole point of bidirectional pipelines (paper Fig. 3 vs 4).
  const int D = 8, N = 8;
  const auto g = simulate_step(make_gpipe(D, N), unit_costs());
  const auto c = simulate_step(make_chimera(D, N), unit_costs());
  const double util_g = g.timeline.utilization(0.0, g.pipe_makespan);
  const double util_c = c.timeline.utilization(0.0, c.pipe_makespan);
  EXPECT_GT(util_c, util_g + 0.05);
}

TEST(ChimeraSchedule, EachDeviceOwnsTwoStages) {
  const auto spec = make_chimera(8, 8);
  for (int dev = 0; dev < 8; ++dev) {
    const auto owned = spec.stages_of_device(dev);
    ASSERT_EQ(owned.size(), 2u);
    // Down stage d and up stage D-1-d.
    EXPECT_EQ(owned[0].second + owned[1].second, 7);
  }
}

TEST(ChimeraSchedule, RejectsOddConfigurations) {
  EXPECT_THROW(make_chimera(3, 4), Error);
  EXPECT_THROW(make_chimera(4, 5), Error);
}

TEST(StepTail, SyncGradPreconditionOptimizerAppended) {
  StepCosts c = unit_costs();
  c.t_sync_grad = 0.5;
  c.t_precondition = 0.25;
  c.t_optimizer = 0.125;
  const auto res = simulate_step(make_gpipe(4, 4), c);
  // Each device gets one interval of each tail kind.
  for (std::size_t d = 0; d < 4; ++d) {
    int sync = 0, prec = 0, opt = 0;
    for (const auto& iv : res.timeline.device_intervals(d)) {
      sync += iv.kind == WorkKind::kSyncGrad;
      prec += iv.kind == WorkKind::kPrecondition;
      opt += iv.kind == WorkKind::kOptimizerUpdate;
    }
    EXPECT_EQ(sync, 1);
    EXPECT_EQ(prec, 1);
    EXPECT_EQ(opt, 1);
  }
  EXPECT_GT(res.step_time, res.pipe_makespan);
}

TEST(StepTail, ChimeraSyncPairsMirrorDevices) {
  StepCosts c = unit_costs();
  c.t_sync_grad = 0.5;
  const auto res = simulate_step(make_chimera(4, 4), c);
  // Paired devices (d, D-1-d) start their sync at the same time.
  for (std::size_t d = 0; d < 2; ++d) {
    double s0 = -1, s1 = -1;
    for (const auto& iv : res.timeline.device_intervals(d))
      if (iv.kind == WorkKind::kSyncGrad) s0 = iv.start;
    for (const auto& iv : res.timeline.device_intervals(3 - d))
      if (iv.kind == WorkKind::kSyncGrad) s1 = iv.start;
    EXPECT_DOUBLE_EQ(s0, s1);
  }
}

TEST(Replicate, StepsTileAtThePeriod) {
  StepCosts c = unit_costs();
  c.t_optimizer = 0.5;
  const auto res = simulate_step(make_gpipe(2, 2), c);
  const Timeline three = replicate_steps(res, 3);
  EXPECT_EQ(three.device_intervals(0).size(),
            3 * res.timeline.device_intervals(0).size());
  EXPECT_NEAR(three.makespan(), 2.0 * res.step_time + res.step_time, 1e-9);
}

TEST(Bubbles, GPipeBubbleFractionDecreasesWithMoreMicrobatches) {
  const auto few = simulate_step(make_gpipe(4, 4), unit_costs());
  const auto many = simulate_step(make_gpipe(4, 16), unit_costs());
  const double frac_few = total_bubble_time(few) / (4 * few.pipe_makespan);
  const double frac_many = total_bubble_time(many) / (4 * many.pipe_makespan);
  EXPECT_LT(frac_many, frac_few);
}

// Property sweep: utilization in the pipeline window equals
// N(T_f+T_b) / T_pipe for flush-based schedules, for various shapes.
struct UtilCase {
  int d;
  int n;
  double ratio;
};

class UtilizationSweep : public ::testing::TestWithParam<UtilCase> {};

TEST_P(UtilizationSweep, MatchesClosedForm) {
  const auto p = GetParam();
  const auto res = simulate_step(make_gpipe(p.d, p.n), unit_costs(p.ratio));
  const double busy = p.n * (1.0 + p.ratio);
  const double expect = busy / res.pipe_makespan;
  EXPECT_NEAR(res.timeline.utilization(0.0, res.pipe_makespan), expect, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UtilizationSweep,
    ::testing::Values(UtilCase{2, 2, 1.0}, UtilCase{2, 8, 2.0},
                      UtilCase{4, 4, 2.0}, UtilCase{4, 12, 3.0},
                      UtilCase{8, 8, 2.0}, UtilCase{8, 24, 1.5},
                      UtilCase{16, 16, 2.0}));

}  // namespace
}  // namespace pf
