// Tests for src/kfac: curvature capture, damped inversion, preconditioning,
// and the mathematical soundness of the Kronecker approximation on a layer
// whose Fisher can be materialized exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/check.h"
#include "src/kfac/kfac_engine.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/gemm.h"
#include "src/linalg/kron.h"

namespace pf {
namespace {

// Runs one fake forward/backward through a linear to populate caches.
void fake_pass(Linear& l, const Matrix& x, const Matrix& dy) {
  l.forward(x, true);
  l.backward(dy);
}

TEST(KfacEngine, CurvatureMatchesDefinition) {
  Rng rng(3);
  Linear l(3, 2, rng, "l");
  KfacOptions opts;
  opts.ema_decay = 0.5;
  KfacEngine engine({&l}, opts);

  const Matrix x = Matrix::randn(8, 3, rng);
  const Matrix dy = Matrix::randn(8, 2, rng);
  zero_grads(l.params());
  fake_pass(l, x, dy);
  engine.update_curvature();

  // Bias-corrected EMA after one update equals the raw estimate.
  const Matrix a = engine.state(0).corrected_a(opts.ema_decay);
  Matrix a_expect = matmul_tn(x, x);
  a_expect *= 1.0 / 8.0;
  EXPECT_LT(max_abs_diff(a, a_expect), 1e-10);

  const Matrix b = engine.state(0).corrected_b(opts.ema_decay);
  Matrix b_expect = matmul_tn(dy, dy);
  b_expect *= 8.0;
  EXPECT_LT(max_abs_diff(b, b_expect), 1e-10);
}

TEST(KfacEngine, EmaAveragesAcrossUpdates) {
  Rng rng(5);
  Linear l(2, 2, rng, "l");
  KfacOptions opts;
  opts.ema_decay = 0.9;
  KfacEngine engine({&l}, opts);
  // Two identical passes → corrected EMA equals the single-pass estimate.
  const Matrix x = Matrix::randn(4, 2, rng);
  const Matrix dy = Matrix::randn(4, 2, rng);
  fake_pass(l, x, dy);
  engine.update_curvature();
  const Matrix a1 = engine.state(0).corrected_a(opts.ema_decay);
  fake_pass(l, x, dy);
  engine.update_curvature();
  const Matrix a2 = engine.state(0).corrected_a(opts.ema_decay);
  EXPECT_LT(max_abs_diff(a1, a2), 1e-10);
}

TEST(KfacEngine, InversesAreDampedInverses) {
  Rng rng(7);
  Linear l(3, 2, rng, "l");
  KfacOptions opts;
  opts.damping = 0.01;
  opts.pi_correction = false;
  KfacEngine engine({&l}, opts);
  const Matrix x = Matrix::randn(16, 3, rng);
  const Matrix dy = Matrix::randn(16, 2, rng);
  fake_pass(l, x, dy);
  engine.update_curvature();
  engine.update_inverses();

  const double gamma = std::sqrt(opts.damping);
  Matrix a = engine.state(0).corrected_a(opts.ema_decay);
  add_diagonal(a, gamma);
  EXPECT_LT(max_abs_diff(matmul(engine.state(0).a_inv, a),
                         Matrix::identity(3)),
            1e-8);
}

TEST(KfacEngine, PreconditionAppliesBothInverses) {
  Rng rng(9);
  Linear l(3, 2, rng, "l");
  KfacOptions opts;
  opts.pi_correction = false;
  KfacEngine engine({&l}, opts);
  const Matrix x = Matrix::randn(16, 3, rng);
  const Matrix dy = Matrix::randn(16, 2, rng);
  zero_grads(l.params());
  fake_pass(l, x, dy);
  engine.update_curvature();
  engine.update_inverses();

  const Matrix raw_grad = l.weight().g;
  engine.precondition();
  const Matrix expect = matmul(
      matmul(engine.state(0).a_inv, raw_grad), engine.state(0).b_inv);
  EXPECT_LT(max_abs_diff(l.weight().g, expect), 1e-10);
}

TEST(KfacEngine, PreconditionBeforeInversionIsIdentity) {
  // The paper's stale-inverse rule: before the first inversion, gradients
  // pass through unchanged.
  Rng rng(11);
  Linear l(3, 2, rng, "l");
  KfacEngine engine({&l}, KfacOptions{});
  const Matrix x = Matrix::randn(4, 3, rng);
  const Matrix dy = Matrix::randn(4, 2, rng);
  zero_grads(l.params());
  fake_pass(l, x, dy);
  const Matrix raw = l.weight().g;
  engine.precondition();
  EXPECT_LT(max_abs_diff(l.weight().g, raw), 1e-300);
}

TEST(KfacEngine, SkipsLayersWithoutCaches) {
  Rng rng(13);
  Linear used(2, 2, rng, "used");
  Linear unused(2, 2, rng, "unused");
  KfacEngine engine({&used, &unused}, KfacOptions{});
  fake_pass(used, Matrix::randn(4, 2, rng), Matrix::randn(4, 2, rng));
  engine.update_curvature();
  EXPECT_TRUE(engine.state(0).has_curvature());
  EXPECT_FALSE(engine.state(1).has_curvature());
  engine.update_inverses();
  EXPECT_TRUE(engine.state(0).has_inverse());
  EXPECT_FALSE(engine.state(1).has_inverse());
}

TEST(KfacEngine, PiCorrectionBalancesDamping) {
  // With wildly different factor scales, π-correction must keep the damped
  // inverses finite and better conditioned than naive equal damping.
  Rng rng(17);
  Linear l(4, 4, rng, "l");
  KfacOptions opts;
  opts.pi_correction = true;
  KfacEngine engine({&l}, opts);
  Matrix x = Matrix::randn(8, 4, rng);
  x *= 100.0;  // huge activations → tr(A) >> tr(B)
  const Matrix dy = Matrix::randn(8, 4, rng) * 0.001;
  fake_pass(l, x, dy);
  engine.update_curvature();
  engine.update_inverses();
  EXPECT_TRUE(std::isfinite(engine.state(0).a_inv.frobenius_norm()));
  EXPECT_TRUE(std::isfinite(engine.state(0).b_inv.frobenius_norm()));
}

TEST(KfacEngine, KroneckerApproximationMatchesExactFisherOnRankOneCase) {
  // When every example has identical activation a, the empirical Fisher of
  // the layer factorizes EXACTLY as (a aᵀ) ⊗ B. Verify the preconditioned
  // gradient equals the materialized-Fisher solve in that case.
  Rng rng(19);
  const std::size_t din = 3, dout = 2, n = 16;
  Linear l(din, dout, rng, "l");
  Matrix x(n, din);
  std::vector<double> a = {0.7, -1.2, 0.4};
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < din; ++c) x(r, c) = a[c];
  const Matrix dy = Matrix::randn(n, dout, rng);

  KfacOptions opts;
  opts.damping = 1e-2;
  opts.pi_correction = false;
  KfacEngine engine({&l}, opts);
  zero_grads(l.params());
  fake_pass(l, x, dy);
  engine.update_curvature();
  engine.update_inverses();
  const Matrix g = l.weight().g;  // [din × dout]
  engine.precondition();

  // Exact: solve (K + damping-structure) vec(G)... with A = a aᵀ exactly,
  // K-FAC's (A+γI)⁻¹ G (B+γI)⁻¹ differs from (A⊗B + ...)⁻¹ only through
  // the damping cross terms; use matching damped factors for the check.
  const double gamma = std::sqrt(opts.damping);
  Matrix af = engine.state(0).corrected_a(opts.ema_decay);
  Matrix bf = engine.state(0).corrected_b(opts.ema_decay);
  add_diagonal(af, gamma);
  add_diagonal(bf, gamma);
  // vec convention: G[din × dout]; (A ⊗ B) with vec_cols(Gᵀ)... Use the
  // direct identity instead: expected = af⁻¹ · G · bf⁻¹.
  const Matrix expect = matmul(matmul(spd_inverse(af), g), spd_inverse(bf));
  EXPECT_LT(max_abs_diff(l.weight().g, expect), 1e-8);
  // And that equals the materialized Kronecker solve of (bf ⊗ af).
  const auto flat = cholesky_solve(cholesky(kron(bf, af)), vec_cols(g));
  const Matrix expect2 = unvec_cols(flat, din, dout);
  EXPECT_LT(max_abs_diff(l.weight().g, expect2), 1e-7);
}

TEST(KfacEngine, GemmThreadsKnobIsBitwiseNeutral) {
  // The gemm_threads option routes curvature and precondition through the
  // row-block parallel kernels; factors, inverses and preconditioned
  // gradients must stay bitwise identical to the serial engine.
  auto run_engine = [](int threads, Matrix* grad_out) {
    Rng rng(29);
    Linear l(5, 3, rng, "l");
    KfacOptions opts;
    opts.gemm_threads = threads;
    KfacEngine engine({&l}, opts);
    const Matrix x = Matrix::randn(32, 5, rng);
    const Matrix dy = Matrix::randn(32, 3, rng);
    zero_grads(l.params());
    fake_pass(l, x, dy);
    engine.update_curvature();
    engine.update_inverses();
    engine.precondition();
    *grad_out = l.weight().g;
    return std::pair<Matrix, Matrix>{engine.state(0).a_ema,
                                     engine.state(0).b_ema};
  };
  Matrix g_serial, g_parallel;
  const auto [a_serial, b_serial] = run_engine(1, &g_serial);
  const auto [a_parallel, b_parallel] = run_engine(4, &g_parallel);
  EXPECT_EQ(max_abs_diff(a_serial, a_parallel), 0.0);
  EXPECT_EQ(max_abs_diff(b_serial, b_parallel), 0.0);
  EXPECT_EQ(max_abs_diff(g_serial, g_parallel), 0.0);
}

TEST(KfacEngine, LayerThreadsKnobIsBitwiseNeutral) {
  // layer_threads fans the per-layer curvature/inversion/precondition loops
  // across the pool; layers are independent, so every value must reproduce
  // the serial engine exactly — factors, inverses, and preconditioned grads.
  // Layer widths are deliberately uneven so chunks carry different work.
  auto run_engine = [](int layer_threads, std::vector<Matrix>* grads) {
    Rng rng(31);
    Linear l0(5, 3, rng, "l0");
    Linear l1(7, 2, rng, "l1");
    Linear l2(4, 6, rng, "l2");
    Linear l3(3, 3, rng, "l3");
    std::vector<Linear*> layers = {&l0, &l1, &l2, &l3};
    KfacOptions opts;
    opts.layer_threads = layer_threads;
    KfacEngine engine(layers, opts);
    const std::size_t batch = 16;
    for (Linear* l : layers) {
      zero_grads(l->params());
      fake_pass(*l, Matrix::randn(batch, l->d_in(), rng),
                Matrix::randn(batch, l->d_out(), rng));
    }
    engine.update_curvature();
    engine.update_inverses();
    engine.precondition();
    grads->clear();
    std::vector<Matrix> factors;
    for (std::size_t i = 0; i < layers.size(); ++i) {
      grads->push_back(layers[i]->weight().g);
      factors.push_back(engine.state(i).a_ema);
      factors.push_back(engine.state(i).b_ema);
      factors.push_back(engine.state(i).a_inv);
      factors.push_back(engine.state(i).b_inv);
    }
    return factors;
  };
  std::vector<Matrix> g_serial, g_parallel;
  const auto f_serial = run_engine(1, &g_serial);
  for (int layer_threads : {2, 4, 16}) {
    const auto f_parallel = run_engine(layer_threads, &g_parallel);
    ASSERT_EQ(f_serial.size(), f_parallel.size());
    for (std::size_t i = 0; i < f_serial.size(); ++i)
      EXPECT_EQ(max_abs_diff(f_serial[i], f_parallel[i]), 0.0)
          << "factor " << i << " layer_threads=" << layer_threads;
    ASSERT_EQ(g_serial.size(), g_parallel.size());
    for (std::size_t i = 0; i < g_serial.size(); ++i)
      EXPECT_EQ(max_abs_diff(g_serial[i], g_parallel[i]), 0.0)
          << "grad " << i << " layer_threads=" << layer_threads;
  }
}

TEST(KfacEngine, GemmThreadsReachInversionWithoutChangingResults) {
  // gemm_threads now also routes the Cholesky-bound inversion work through
  // the pool (blocked factorization + column-parallel inverse); results must
  // stay bitwise identical to the serial engine.
  auto run_engine = [](int gemm_threads_opt) {
    Rng rng(37);
    Linear l(6, 4, rng, "l");
    KfacOptions opts;
    opts.gemm_threads = gemm_threads_opt;
    KfacEngine engine({&l}, opts);
    zero_grads(l.params());
    fake_pass(l, Matrix::randn(24, 6, rng), Matrix::randn(24, 4, rng));
    engine.update_curvature();
    engine.update_inverses();
    return std::pair<Matrix, Matrix>{engine.state(0).a_inv,
                                     engine.state(0).b_inv};
  };
  const auto [a1, b1] = run_engine(1);
  const auto [a4, b4] = run_engine(4);
  EXPECT_EQ(max_abs_diff(a1, a4), 0.0);
  EXPECT_EQ(max_abs_diff(b1, b4), 0.0);
}

TEST(KfacEngine, RejectsBadOptions) {
  Rng rng(23);
  Linear l(2, 2, rng, "l");
  KfacOptions bad;
  bad.ema_decay = 1.5;
  EXPECT_THROW(KfacEngine({&l}, bad), Error);
  bad = KfacOptions{};
  bad.damping = 0.0;
  EXPECT_THROW(KfacEngine({&l}, bad), Error);
  EXPECT_THROW(KfacEngine({}, KfacOptions{}), Error);
}

}  // namespace
}  // namespace pf
