// Tests for the intro's model-partitioning tradeoff analysis.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/perfmodel/partitioning.h"

namespace pf {
namespace {

PartitioningInput base_input() {
  PartitioningInput in;
  in.cfg = bert_base();
  in.hw = p100();
  in.world = 4;
  in.b_micro = 32;
  in.n_micro = 4;
  return in;
}

TEST(Partitioning, AllStrategiesProducePositiveThroughput) {
  const auto r = analyze_partitioning(base_input());
  EXPECT_GT(r.thr_operator_parallel, 0.0);
  EXPECT_GT(r.thr_state_partitioning, 0.0);
  EXPECT_GT(r.thr_pipeline, 0.0);
  EXPECT_STRNE(r.best, "");
}

TEST(Partitioning, OperatorParallelCommunicationGrowsWithWorld) {
  auto in = base_input();
  const auto w2 = analyze_partitioning([&] { in.world = 2; return in; }());
  const auto w12 = analyze_partitioning([&] { in.world = 12; return in; }());
  EXPECT_GT(w12.comm_operator_parallel, w2.comm_operator_parallel);
}

TEST(Partitioning, ZeroCommunicationGrowsWithModelSize) {
  auto in = base_input();
  const auto small = analyze_partitioning(in);
  in.cfg = bert_large();
  in.world = 4;
  const auto large = analyze_partitioning(in);
  // BERT-Large has ~3x the parameters: ZeRO's per-step traffic scales with
  // the model, not the activations.
  EXPECT_GT(large.comm_state_partitioning,
            2.0 * small.comm_state_partitioning);
}

TEST(Partitioning, PipelineBubbleIndependentOfModelSizePerStage) {
  // Bubble time = (W-1)(Tf+Tb) of ONE stage; doubling N_micro amortizes it
  // but does not change its absolute size.
  auto in = base_input();
  const auto n4 = analyze_partitioning(in);
  in.n_micro = 8;
  const auto n8 = analyze_partitioning(in);
  EXPECT_NEAR(n4.bubble_pipeline, n8.bubble_pipeline, 1e-12);
  EXPECT_GT(n8.thr_pipeline, n4.thr_pipeline);  // amortized
}

TEST(Partitioning, FastInterconnectFavorsCommunicationStrategies) {
  // On a slow link the pipeline's P2P-free design wins by more; a fast
  // link closes the gap for operator parallelism.
  auto in = base_input();
  in.world = 8;
  in.n_micro = 8;
  auto slow_hw = p100();
  slow_hw.link_bandwidth = 1e9;  // 1 GB/s
  in.hw = slow_hw;
  const auto slow = analyze_partitioning(in);
  auto fast_hw = p100();
  fast_hw.link_bandwidth = 300e9;  // NVLink-future-class
  in.hw = fast_hw;
  const auto fast = analyze_partitioning(in);
  const double gap_slow = slow.thr_pipeline / slow.thr_operator_parallel;
  const double gap_fast = fast.thr_pipeline / fast.thr_operator_parallel;
  EXPECT_GT(gap_slow, gap_fast);
  // And on the slow interconnect the pipeline must win outright.
  EXPECT_STREQ(slow.best, "pipeline");
}

TEST(Partitioning, RejectsDegenerateWorld) {
  auto in = base_input();
  in.world = 1;
  EXPECT_THROW(analyze_partitioning(in), Error);
}

}  // namespace
}  // namespace pf
