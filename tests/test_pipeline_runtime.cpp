// The executable pipeline runtime's contract (src/train/pipeline_runtime.h):
// running a real BertModel under any registered flush schedule, at any
// stage/worker/thread count, is BITWISE identical to the serial Trainer
// with accumulation_steps = n_micro — losses and parameters. Plus the
// realized mechanics: stage-channel handover order, executed-vs-planned op
// order, the executed Timeline, and bubble-dispatched K-FAC work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/common/strings.h"
#include "src/common/task_executor.h"
#include "src/optim/lamb.h"
#include "src/pipeline/simulator.h"
#include "src/train/pipeline_runtime.h"

namespace pf {
namespace {

BertConfig small_bert(std::size_t n_layers = 4) {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = n_layers;
  cfg.seq_len = 12;
  return cfg;
}

struct Corpus {
  SyntheticCorpus corpus;
  MlmBatcher batcher;
  explicit Corpus(const BertConfig& cfg)
      : corpus([&] {
          CorpusConfig cc;
          cc.vocab = cfg.vocab;
          return cc;
        }()),
        batcher(corpus, [&] {
          MlmBatcherConfig bc;
          bc.seq_len = cfg.seq_len;
          return bc;
        }()) {}
};

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<double>> params;  // copied parameter values
};

RunResult serial_reference(const BertConfig& cfg, int n_micro,
                           std::size_t micro_batch, std::size_t steps,
                           bool use_kfac) {
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  TrainerConfig tc;
  tc.batch_size = micro_batch;
  tc.accumulation_steps = static_cast<std::size_t>(n_micro);
  tc.total_steps = steps;
  tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
  std::unique_ptr<Optimizer> opt;
  if (use_kfac) {
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;  // the paper's (and the runtime's) mode
    opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                          std::make_unique<Lamb>(), o);
  } else {
    opt = std::make_unique<Lamb>();
  }
  Trainer trainer(model, data.batcher, std::move(opt), tc);
  const auto trace = trainer.run();
  RunResult r;
  r.losses = trace.loss;
  for (Param* p : model.params()) {
    std::vector<double> w(p->w.data(), p->w.data() + p->w.size());
    r.params.push_back(std::move(w));
  }
  return r;
}

PipelineRuntimeConfig runtime_config(const std::string& schedule, int stages,
                                     int n_micro, std::size_t micro_batch,
                                     std::size_t steps, bool use_kfac,
                                     int workers, int stage_threads) {
  PipelineRuntimeConfig pc;
  pc.schedule = schedule;
  pc.n_stages = stages;
  pc.n_micro = n_micro;
  pc.micro_batch_size = micro_batch;
  pc.total_steps = steps;
  pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
  pc.workers = workers;
  pc.stage_threads = stage_threads;
  pc.use_kfac = use_kfac;
  pc.kfac.inverse_interval = 3;
  return pc;
}

RunResult pipeline_run(const BertConfig& cfg, const PipelineRuntimeConfig& pc,
                       PipelineRuntime** out_rt = nullptr,
                       BertModel** out_model = nullptr) {
  // A kept runtime must keep its model AND corpus alive too — the runtime
  // holds references to both, so preserving only the runtime would leave
  // it over freed memory.
  struct KeptRun {
    std::unique_ptr<BertModel> model;
    std::unique_ptr<Corpus> data;
    std::unique_ptr<PipelineRuntime> rt;
  };
  static std::vector<KeptRun> kept;
  Rng rng(7);
  auto model = std::make_unique<BertModel>(cfg, rng);
  auto data = std::make_unique<Corpus>(cfg);
  auto rt = std::make_unique<PipelineRuntime>(*model, data->batcher, pc);
  const auto trace = rt->run();
  RunResult r;
  r.losses = trace.loss;
  for (Param* p : model->params()) {
    std::vector<double> w(p->w.data(), p->w.data() + p->w.size());
    r.params.push_back(std::move(w));
  }
  if (out_rt != nullptr || out_model != nullptr) {
    if (out_rt != nullptr) *out_rt = rt.get();
    if (out_model != nullptr) *out_model = model.get();
    kept.push_back(
        KeptRun{std::move(model), std::move(data), std::move(rt)});
  }
  return r;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    ASSERT_EQ(a.losses[i], b.losses[i]) << label << " loss step " << i;
  ASSERT_EQ(a.params.size(), b.params.size()) << label;
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size()) << label;
    for (std::size_t i = 0; i < a.params[p].size(); ++i)
      ASSERT_EQ(a.params[p][i], b.params[p][i])
          << label << " param " << p << " elem " << i;
  }
}

// --- The headline contract ------------------------------------------------

TEST(PipelineRuntime, KfacBitwiseEqualsSerialAcrossSchedulesAndStages) {
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 5;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, true);
  struct Case {
    const char* schedule;
    int stages;
  };
  for (const Case c : {Case{"gpipe", 2}, Case{"gpipe", 4}, Case{"1f1b", 2},
                       Case{"1f1b", 4}, Case{"interleaved-1f1b", 2},
                       Case{"chimera", 2}, Case{"chimera", 4}}) {
    const auto pr = pipeline_run(
        cfg, runtime_config(c.schedule, c.stages, n_micro, micro_batch,
                            steps, true, /*workers=*/2, /*stage_threads=*/1));
    expect_bitwise_equal(ref, pr,
                         format("%s D=%d", c.schedule, c.stages));
  }
}

TEST(PipelineRuntime, BitwiseInvariantToWorkersAndStageThreads) {
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 4;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, true);
  for (const int workers : {0, 1, 4}) {
    for (const int threads : {1, 2}) {
      const auto pr = pipeline_run(
          cfg, runtime_config("1f1b", 4, n_micro, micro_batch, steps, true,
                              workers, threads));
      expect_bitwise_equal(
          ref, pr, format("workers=%d stage_threads=%d", workers, threads));
    }
  }
}

TEST(PipelineRuntime, LambOnlyModeBitwiseEqualsSerial) {
  const auto cfg = small_bert(2);
  const int n_micro = 6;
  const std::size_t micro_batch = 4, steps = 4;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, false);
  const auto pr = pipeline_run(
      cfg, runtime_config("1f1b", 2, n_micro, micro_batch, steps, false,
                          /*workers=*/2, /*stage_threads=*/1));
  expect_bitwise_equal(ref, pr, "lamb 1f1b D=2");
}

TEST(PipelineRuntime, RelayStagesKeepTheContractOnShallowModels) {
  // interleaved-1f1b on a 2-block model cuts D·V = 4 virtual stages; two
  // of them own zero blocks and act as relays.
  const auto cfg = small_bert(2);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 3;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, true);
  auto pc = runtime_config("interleaved-1f1b", 2, n_micro, micro_batch,
                           steps, true, 2, 1);
  pc.virtual_chunks = 2;
  const auto pr = pipeline_run(cfg, pc);
  expect_bitwise_equal(ref, pr, "interleaved relay stages");
}

TEST(PipelineRuntime, CopyAndBorrowStashModesAreBitwiseIdentical) {
  // The move/borrow stash path (default) and the legacy copy-restore path
  // must produce identical bits — and the borrow path must hold strictly
  // fewer stash bytes at its peak (the overhead the refactor removes).
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 3;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, true);
  for (const char* schedule : {"1f1b", "gpipe"}) {
    auto pc = runtime_config(schedule, 2, n_micro, micro_batch, steps, true,
                             /*workers=*/2, /*stage_threads=*/1);
    PipelineRuntime* borrow_rt = nullptr;
    const auto borrow = pipeline_run(cfg, pc, &borrow_rt);
    pc.copy_stashes = true;
    PipelineRuntime* copy_rt = nullptr;
    const auto copy = pipeline_run(cfg, pc, &copy_rt);
    expect_bitwise_equal(ref, borrow, format("%s borrow", schedule));
    expect_bitwise_equal(ref, copy, format("%s copy", schedule));
    const auto& bs = borrow_rt->memory_stats();
    const auto& cs = copy_rt->memory_stats();
    ASSERT_EQ(bs.size(), cs.size());
    for (std::size_t st = 0; st < bs.size(); ++st) {
      EXPECT_GT(bs[st].peak_stash_bytes, 0u) << schedule << " stage " << st;
      EXPECT_LT(bs[st].peak_stash_bytes, cs[st].peak_stash_bytes)
          << schedule << " stage " << st
          << ": borrow peak not below copy peak";
    }
  }
}

TEST(PipelineRuntime, ArenaRecyclesStashBuffersAcrossSteps) {
  // By the last step the stage arenas must be serving recycled storage to
  // the forwards (buffers parked by earlier steps' stash teardown), and
  // dropping the K-FAC stash early (LAMB mode) must shrink the stash
  // high-water mark.
  const auto cfg = small_bert(4);
  auto pc = runtime_config("1f1b", 2, 4, 4, 3, true, 2, 1);
  PipelineRuntime* rt = nullptr;
  pipeline_run(cfg, pc, &rt);
  for (std::size_t st = 0; st < rt->memory_stats().size(); ++st) {
    const auto& ms = rt->memory_stats()[st];
    EXPECT_GT(ms.arena_recycled, 0u) << "stage " << st;
    EXPECT_GT(ms.peak_stash_bytes, 0u) << "stage " << st;
  }
  auto lamb_pc = runtime_config("1f1b", 2, 4, 4, 3, false, 2, 1);
  PipelineRuntime* lamb_rt = nullptr;
  pipeline_run(cfg, lamb_pc, &lamb_rt);
  for (std::size_t st = 0; st < lamb_rt->memory_stats().size(); ++st) {
    EXPECT_LT(lamb_rt->memory_stats()[st].peak_stash_bytes,
              rt->memory_stats()[st].peak_stash_bytes)
        << "stage " << st << ": no-curvature run should stash less";
  }
}

// --- Handover order and realized event order ------------------------------

TEST(PipelineRuntime, StageChannelHandoverOrderIsPinned) {
  const auto cfg = small_bert(4);
  PipelineRuntime* rt = nullptr;
  pipeline_run(cfg, runtime_config("1f1b", 4, 4, 4, 1, true, 2, 1), &rt);
  ASSERT_NE(rt, nullptr);
  // 1F1B hands forward activations over every boundary in ascending micro
  // order, and the normalized backward drain returns gradients ascending
  // too (the gradient-fold order).
  for (int b = 0; b < 3; ++b) {
    const std::vector<int> want{0, 1, 2, 3};
    EXPECT_EQ(rt->forward_send_order(b), want) << "fwd boundary " << b;
    EXPECT_EQ(rt->backward_send_order(b), want) << "bwd boundary " << b;
  }
}

TEST(PipelineRuntime, StaticSchedulesRealizeThePlannedEventOrder) {
  const auto cfg = small_bert(4);
  for (const char* schedule : {"gpipe", "1f1b"}) {
    PipelineRuntime* rt = nullptr;
    pipeline_run(cfg, runtime_config(schedule, 4, 4, 4, 1, true, 4, 1), &rt);
    ASSERT_NE(rt, nullptr);
    EXPECT_EQ(rt->last_realized_order(), rt->planned_order()) << schedule;
  }
}

TEST(PipelineRuntime, DynamicSchedulesExecuteEveryPlannedOpOnItsDevice) {
  const auto cfg = small_bert(4);
  PipelineRuntime* rt = nullptr;
  pipeline_run(cfg, runtime_config("chimera", 4, 4, 4, 1, true, 4, 1), &rt);
  ASSERT_NE(rt, nullptr);
  const auto planned = rt->planned_order();
  const auto realized = rt->last_realized_order();
  ASSERT_EQ(planned.size(), realized.size());
  for (std::size_t d = 0; d < planned.size(); ++d) {
    auto key = [](const PipeOp& op) { return op_key(op); };
    std::multiset<long> want, got;
    for (const auto& op : planned[d]) want.insert(key(op));
    for (const auto& op : realized[d]) got.insert(key(op));
    EXPECT_EQ(want, got) << "device " << d;
  }
}

// --- Executed timeline and bubble-dispatched K-FAC ------------------------

TEST(PipelineRuntime, ExecutedTimelineCoversAllWorkAndReportsUtilization) {
  const auto cfg = small_bert(4);
  PipelineRuntime* rt = nullptr;
  pipeline_run(cfg, runtime_config("1f1b", 4, 4, 4, 2, true, 4, 1), &rt);
  ASSERT_NE(rt, nullptr);
  const Timeline& tl = rt->last_executed_timeline();
  ASSERT_EQ(tl.n_devices(), 4u);
  // Every device executed its 4 forwards + 4 backwards plus tail work.
  std::size_t fwd = 0, bwd = 0, kfac = 0, opt = 0;
  for (std::size_t d = 0; d < tl.n_devices(); ++d) {
    for (const auto& iv : tl.device_intervals(d)) {
      EXPECT_GE(iv.end, iv.start);
      if (iv.kind == WorkKind::kForward) ++fwd;
      if (iv.kind == WorkKind::kBackward) ++bwd;
      if (iv.kind == WorkKind::kCurvatureA ||
          iv.kind == WorkKind::kCurvatureB ||
          iv.kind == WorkKind::kInversionA ||
          iv.kind == WorkKind::kInversionB)
        ++kfac;
      if (iv.kind == WorkKind::kOptimizerUpdate) ++opt;
    }
  }
  EXPECT_EQ(fwd, 16u);
  EXPECT_EQ(bwd, 16u);
  EXPECT_GT(kfac, 0u);
  EXPECT_EQ(opt, 4u);
  const double u = tl.utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0 + 1e-9);
  // The K-FAC plan mirrors the executed work items with realized times.
  for (const auto& task : rt->last_kfac_plan()) {
    EXPECT_GE(task.duration, 0.0);
    EXPECT_GE(task.stage, 0);
  }
}

TEST(PipelineRuntime, ExecutedOpOrderMatchesSimulatedOpOrder) {
  // The executed-vs-simulated cross-check: simulate the same spec under
  // unit costs and compare per-device op sequences (exact for static
  // schedules — both are the registry program). Utilizations of both
  // windows must be sane fractions; their numeric values differ (real
  // kernels vs unit costs), which is exactly what the report shows.
  const auto cfg = small_bert(4);
  PipelineRuntime* rt = nullptr;
  pipeline_run(cfg, runtime_config("1f1b", 4, 8, 4, 1, false, 4, 1), &rt);
  ASSERT_NE(rt, nullptr);
  const auto sim = simulate_step(rt->spec(), StepCosts{});
  ASSERT_EQ(sim.realized_programs.size(), rt->planned_order().size());
  EXPECT_EQ(rt->last_realized_order(), sim.realized_programs);
  const double sim_util =
      sim.timeline.utilization(0.0, sim.pipe_makespan);
  EXPECT_GT(sim_util, 0.0);
  EXPECT_LE(sim_util, 1.0);
  EXPECT_GT(rt->last_executed_timeline().utilization(), 0.0);
}

// --- Building blocks ------------------------------------------------------

TEST(TaskExecutor, RunsDagInDependencyOrderAcrossLanes) {
  ThreadPool pool(3);
  TaskExecutor ex(pool, 3);
  std::mutex mu;
  std::vector<int> order;
  auto log = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const auto a = ex.add([&] { log(0); }, 0, 0);
  const auto b = ex.add([&] { log(1); }, 1, 0, {a});
  const auto c = ex.add([&] { log(2); }, 2, 0, {a});
  ex.add([&] { log(3); }, 0, 1, {b, c});
  ex.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
  for (const auto& rec : ex.records()) EXPECT_TRUE(rec.executed);
}

TEST(TaskExecutor, LowPriorityFillerRunsOnlyWhenLaneIsIdle) {
  // One lane: a chain of "ops" plus one ready low-priority filler. The
  // filler must not run before ready ops (bubble rule) but must run
  // eventually.
  ThreadPool pool(2);
  TaskExecutor ex(pool, 1);
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  const auto a = ex.add([&] { log(0); }, 0, 0);
  ex.add([&] { log(1); }, 0, 1, {a});
  ex.add([&] { log(9); }, 0, 1000);  // filler, ready from the start
  ex.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // highest-priority ready op first
}

TEST(TaskExecutor, ResourceTokensSerializeAcrossLanes) {
  ThreadPool pool(4);
  TaskExecutor ex(pool, 4);
  std::atomic<int> in_resource{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 8; ++i) {
    ex.add(
        [&] {
          if (in_resource.fetch_add(1) > 0) overlapped = true;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          in_resource.fetch_sub(1);
        },
        static_cast<std::size_t>(i % 4), i, {}, /*resource=*/7);
  }
  ex.run();
  EXPECT_FALSE(overlapped.load());
}

TEST(TaskExecutor, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  TaskExecutor ex(pool, 2);
  const auto a = ex.add([] { throw Error("boom"); }, 0, 0);
  bool ran_dependent = false;
  ex.add([&] { ran_dependent = true; }, 1, 0, {a});
  EXPECT_THROW(ex.run(), Error);
  EXPECT_FALSE(ran_dependent);
}

TEST(TaskExecutor, ZeroWorkerPoolRunsSeriallyOnCaller) {
  ThreadPool pool(0);
  TaskExecutor ex(pool, 2);
  std::vector<int> order;
  const auto a = ex.add([&] { order.push_back(0); }, 0, 5);
  ex.add([&] { order.push_back(1); }, 1, 1, {a});
  ex.add([&] { order.push_back(2); }, 0, 0);
  ex.run();
  ASSERT_EQ(order.size(), 3u);
}

TEST(StageChannel, SendTakeRecvAndOrderLog) {
  StageChannel ch("test");
  ch.send(1, Matrix(2, 2, 1.0));
  ch.send(0, Matrix(1, 1, 2.0));
  EXPECT_TRUE(ch.has(1));
  EXPECT_EQ(ch.pending(), 2u);
  const Matrix m1 = ch.take(1);
  EXPECT_EQ(m1.rows(), 2u);
  const Matrix m0 = ch.recv(0, /*timeout_seconds=*/1.0);
  EXPECT_EQ(m0(0, 0), 2.0);
  EXPECT_EQ(ch.pending(), 0u);
  const std::vector<int> want{1, 0};
  EXPECT_EQ(ch.send_order(), want);
  EXPECT_THROW(ch.take(5), Error);
  EXPECT_THROW(ch.recv(5, 0.05), Error);
  ch.send(3, Matrix());
  EXPECT_THROW(ch.send(3, Matrix()), Error);
}

TEST(StagePartition, PartitionCoversModelParamsInOrder) {
  const auto cfg = small_bert(4);
  Rng rng(3);
  BertModel model(cfg, rng);
  for (const int stages : {1, 2, 4}) {
    BertStagePartition part(model, stages);
    EXPECT_EQ(part.params(), model.params()) << stages << " stages";
    std::vector<Linear*> kl;
    for (int s = 0; s < stages; ++s)
      for (Linear* l : part.stage(s).kfac_linears()) kl.push_back(l);
    EXPECT_EQ(kl, model.kfac_linears()) << stages << " stages";
  }
}

TEST(StagePartition, SingleStepMatchesMonolithicModel) {
  // One stage, one micro: forward+backward through the partition equals
  // the monolithic train_step_backward bit for bit (losses and grads).
  const auto cfg = small_bert(2);
  Rng rng1(5), rng2(5);
  BertModel mono(cfg, rng1);
  BertModel split(cfg, rng2);
  Corpus data(cfg);
  Rng drng(17);
  const auto batch = data.batcher.next_batch(6, drng);

  zero_grads(mono.params());
  const auto ref = mono.train_step_backward(batch);

  BertStagePartition part(split, 2);
  zero_grads(split.params());
  const ExecContext ctx = ExecContext::serial();
  Matrix h = part.stage(0).forward(0, batch, Matrix(), ctx);
  part.stage(1).forward(0, batch, std::move(h), ctx);
  const auto losses = part.stage(1).losses(0);
  Matrix g = part.stage(1).backward(0, batch, Matrix(), ctx);
  part.stage(0).backward(0, batch, std::move(g), ctx);

  EXPECT_EQ(losses.total, ref.total);
  EXPECT_EQ(losses.mlm, ref.mlm);
  EXPECT_EQ(losses.nsp, ref.nsp);
  const auto pm = mono.params();
  const auto ps = split.params();
  ASSERT_EQ(pm.size(), ps.size());
  for (std::size_t i = 0; i < pm.size(); ++i)
    for (std::size_t e = 0; e < pm[i]->g.size(); ++e)
      EXPECT_EQ(pm[i]->g.data()[e], ps[i]->g.data()[e])
          << pm[i]->name << " elem " << e;
}

TEST(PipelineRuntime, FlushlessSchedulesStreamOnlyThroughRunFlushless) {
  const auto cfg = small_bert(2);
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  // LAMB-only flushless constructs fine (run_flushless is its entry), but
  // the synchronous step()/run() path must reject it...
  auto pc = runtime_config("1f1b-flushless", 2, 4, 4, 1, false, 1, 1);
  PipelineRuntime rt(model, data.batcher, pc);
  EXPECT_THROW(rt.step(), Error);
  // ...and K-FAC has no step boundary to anchor curvature refreshes, so a
  // flushless + use_kfac config is rejected at construction.
  auto kfac_pc = runtime_config("1f1b-flushless", 2, 4, 4, 1, true, 1, 1);
  EXPECT_THROW(PipelineRuntime(model, data.batcher, kfac_pc), Error);
}

TEST(PipelineRuntime, RejectsMoreThanTwoPipelines) {
  // chimera-4 is registry- and simulator-complete, but the executable
  // runtime maps at most two pipelines onto its devices — the constructor
  // must say so rather than mis-execute.
  const auto cfg = small_bert(2);
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  auto pc = runtime_config("chimera-4", 2, 4, 4, 1, false, 1, 1);
  try {
    PipelineRuntime rt(model, data.batcher, pc);
    FAIL() << "expected pf::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("at most 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace pf
