// Tests for the auxiliary features: dropout and CSV sweep export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>

#include "src/common/check.h"
#include "src/nn/bert.h"
#include "src/nn/dropout.h"
#include "src/nn/serialize.h"
#include "src/optim/grad_clip.h"
#include "src/perfmodel/csv.h"

namespace pf {
namespace {

TEST(Dropout, EvaluationIsIdentity) {
  Dropout drop(0.5, 1);
  Rng rng(2);
  const Matrix x = Matrix::randn(4, 6, rng);
  EXPECT_LT(max_abs_diff(drop.forward(x, false), x), 1e-300);
}

TEST(Dropout, ZeroProbabilityIsIdentityEvenWhenTraining) {
  Dropout drop(0.0, 1);
  Rng rng(3);
  const Matrix x = Matrix::randn(4, 6, rng);
  EXPECT_LT(max_abs_diff(drop.forward(x, true), x), 1e-300);
  EXPECT_LT(max_abs_diff(drop.backward(x), x), 1e-300);
}

TEST(Dropout, DropRateAndInvertedScaling) {
  Dropout drop(0.3, 7);
  Matrix x(200, 200, 1.0);
  const Matrix y = drop.forward(x, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t r = 0; r < 200; ++r)
    for (std::size_t c = 0; c < 200; ++c) {
      if (y(r, c) == 0.0)
        ++zeros;
      else
        EXPECT_NEAR(y(r, c), 1.0 / 0.7, 1e-12);
      sum += y(r, c);
    }
  EXPECT_NEAR(static_cast<double>(zeros) / 40000.0, 0.3, 0.02);
  // Inverted scaling preserves the expectation.
  EXPECT_NEAR(sum / 40000.0, 1.0, 0.03);
}

TEST(Dropout, BackwardUsesTheCachedMask) {
  Dropout drop(0.5, 11);
  Matrix x(8, 8, 2.0);
  const Matrix y = drop.forward(x, true);
  Matrix dy(8, 8, 1.0);
  const Matrix dx = drop.backward(dy);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) {
      // Gradient flows exactly where the activation survived, same scale.
      EXPECT_DOUBLE_EQ(dx(r, c), y(r, c) / 2.0);
    }
}

TEST(Dropout, RejectsInvalidProbability) {
  EXPECT_THROW(Dropout(1.0, 1), Error);
  EXPECT_THROW(Dropout(-0.1, 1), Error);
}

TEST(SweepCsv, HeaderAndRowColumnCountsMatch) {
  const auto pts = sweep_depth_bmicro(bert_base(), p100(), "chimera", {4},
                                      {8}, 1, false);
  const std::string header = sweep_csv_header();
  const std::string row = sweep_point_csv(pts[0]);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_GT(count(header), 20);
}

TEST(SweepCsv, DocumentHasOneLinePerPointPlusHeader) {
  const auto pts = sweep_depth_bmicro(bert_base(), p100(), "chimera", {4, 8},
                                      {8, 16}, 1, false);
  const std::string csv = sweep_to_csv(pts);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);  // header + 4
  EXPECT_NE(csv.find("bert-base,p100,chimera,4,4,8,0,1,"),
            std::string::npos);
}

TEST(SweepCsv, WritesFile) {
  const auto pts = sweep_depth_bmicro(bert_base(), p100(), "chimera", {4},
                                      {8}, 1, false);
  const std::string path = ::testing::TempDir() + "/sweep.csv";
  write_sweep_csv(pts, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, sweep_csv_header());
}

TEST(GradClip, ScalesOnlyWhenAboveThreshold) {
  Param p(1, 2, "w");
  p.g = Matrix::from_rows({{3.0, 4.0}});  // norm 5
  EXPECT_DOUBLE_EQ(clip_grad_norm({&p}, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(p.g(0, 0), 3.0);  // untouched
  EXPECT_DOUBLE_EQ(clip_grad_norm({&p}, 1.0), 5.0);
  EXPECT_NEAR(global_grad_norm({&p}), 1.0, 1e-12);
  EXPECT_NEAR(p.g(0, 1), 4.0 / 5.0, 1e-12);
}

TEST(GradClip, GlobalNormSpansAllParams) {
  Param a(1, 1, "a"), b(1, 1, "b");
  a.g(0, 0) = 3.0;
  b.g(0, 0) = 4.0;
  clip_grad_norm({&a, &b}, 1.0);
  EXPECT_NEAR(a.g(0, 0) / b.g(0, 0), 0.75, 1e-12);  // direction preserved
  EXPECT_NEAR(global_grad_norm({&a, &b}), 1.0, 1e-12);
}

TEST(Serialize, RoundTripPreservesWeights) {
  BertConfig cfg;
  cfg.vocab = 16;
  cfg.d_model = 8;
  cfg.d_ff = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 8;
  Rng rng1(3), rng2(99);
  BertModel m1(cfg, rng1);
  BertModel m2(cfg, rng2);  // different init
  const std::string path = ::testing::TempDir() + "/model.ckpt";
  save_params(m1.params(), path);
  load_params(m2.params(), path);
  const auto p1 = m1.params(), p2 = m2.params();
  for (std::size_t i = 0; i < p1.size(); ++i)
    EXPECT_LT(max_abs_diff(p1[i]->w, p2[i]->w), 1e-300) << p1[i]->name;
}

TEST(Serialize, RejectsMismatchedModel) {
  BertConfig small;
  small.vocab = 16;
  small.d_model = 8;
  small.d_ff = 16;
  small.n_heads = 2;
  small.n_layers = 1;
  small.seq_len = 8;
  BertConfig big = small;
  big.d_model = 16;
  big.d_ff = 32;
  Rng rng(5);
  BertModel m1(small, rng);
  BertModel m2(big, rng);
  const std::string path = ::testing::TempDir() + "/mismatch.ckpt";
  save_params(m1.params(), path);
  EXPECT_THROW(load_params(m2.params(), path), Error);
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = ::testing::TempDir() + "/garbage.ckpt";
  {
    std::ofstream f(path);
    f << "this is not a checkpoint";
  }
  Param p(1, 1, "w");
  EXPECT_THROW(load_params({&p}, path), Error);
}

}  // namespace
}  // namespace pf
