// Tests for src/optim: SGD, Adam, LAMB, the paper's LR schedule, and the
// K-FAC optimizer wrapper. Convergence checks use small quadratic and
// ill-conditioned problems where second-order preconditioning provably wins.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/check.h"
#include "src/linalg/gemm.h"
#include "src/nn/loss.h"
#include "src/optim/adam.h"
#include "src/optim/kfac_optimizer.h"
#include "src/optim/lamb.h"
#include "src/optim/lr_schedule.h"
#include "src/optim/sgd.h"

namespace pf {
namespace {

// Quadratic loss 0.5‖w − target‖² over a single Param.
double quadratic_loss_and_grad(Param& p, const Matrix& target) {
  double loss = 0.0;
  for (std::size_t i = 0; i < p.w.rows(); ++i)
    for (std::size_t j = 0; j < p.w.cols(); ++j) {
      const double d = p.w(i, j) - target(i, j);
      loss += 0.5 * d * d;
      p.g(i, j) = d;
    }
  return loss;
}

template <typename Opt>
double optimize_quadratic(Opt& opt, double lr, int steps) {
  Rng rng(7);
  Param p(3, 3, "w");
  p.w = Matrix::randn(3, 3, rng);
  const Matrix target = Matrix::randn(3, 3, rng);
  double loss = 0.0;
  for (int i = 0; i < steps; ++i) {
    p.zero_grad();
    loss = quadratic_loss_and_grad(p, target);
    opt.step({&p}, lr);
  }
  return loss;
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd opt;
  EXPECT_LT(optimize_quadratic(opt, 0.5, 100), 1e-10);
}

TEST(Sgd, MomentumAcceleratesConvergence) {
  Sgd plain;
  Sgd momentum(0.9);
  const double slow = optimize_quadratic(plain, 0.05, 60);
  const double fast = optimize_quadratic(momentum, 0.05, 60);
  EXPECT_LT(fast, slow);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Sgd opt(0.0, 0.1);
  Param p(1, 1, "w");
  p.w(0, 0) = 1.0;
  p.g(0, 0) = 0.0;
  opt.step({&p}, 0.5);
  EXPECT_NEAR(p.w(0, 0), 1.0 - 0.5 * 0.1 * 1.0, 1e-12);
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam opt;
  EXPECT_LT(optimize_quadratic(opt, 0.1, 300), 1e-6);
}

TEST(Adam, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction ⇒ |Δw| ≈ lr for any gradient magnitude on step 1.
  for (double scale : {1e-6, 1.0, 1e6}) {
    Adam opt;
    Param p(1, 1, "w");
    p.w(0, 0) = 0.0;
    p.g(0, 0) = scale;
    opt.step({&p}, 0.01);
    EXPECT_NEAR(std::abs(p.w(0, 0)), 0.01, 0.001) << "scale=" << scale;
  }
}

TEST(Lamb, ConvergesOnQuadratic) {
  Lamb opt(0.9, 0.999, 1e-6, 0.0);
  EXPECT_LT(optimize_quadratic(opt, 0.05, 400), 1e-4);
}

TEST(Lamb, TrustRatioIsNormRatio) {
  Lamb opt(0.9, 0.999, 1e-6, 0.0, 1e9);
  Param p(2, 2, "w");
  p.w = Matrix::from_rows({{3, 0}, {0, 4}});  // ‖w‖ = 5
  p.g = Matrix::from_rows({{1, 0}, {0, 0}});
  opt.step({&p}, 0.0);  // lr 0: inspect ratio without moving weights
  // update ≈ sign-ish normalized: m̂/(√v̂+ε) = 1 at the single coordinate.
  EXPECT_NEAR(opt.last_trust_ratio(&p), 5.0, 0.01);
}

TEST(Lamb, TrustRatioClamped) {
  Lamb opt(0.9, 0.999, 1e-6, 0.0, 10.0);
  Param p(1, 2, "w");
  p.w = Matrix::from_rows({{1e6, 0.0}});
  p.g = Matrix::from_rows({{1.0, 0.0}});
  opt.step({&p}, 0.0);
  EXPECT_DOUBLE_EQ(opt.last_trust_ratio(&p), 10.0);
}

TEST(LrSchedule, WarmupThenPolyDecay) {
  // The paper's Phase-1 schedule: base 6e-3, warmup 2000, total 7038.
  PolyWarmupSchedule s(6e-3, 2000, 7038);
  EXPECT_NEAR(s.lr(0), 6e-3 / 2000, 1e-9);
  EXPECT_NEAR(s.lr(999), 6e-3 * 0.5, 1e-5);
  EXPECT_NEAR(s.lr(1999), 6e-3, 1e-8);
  // After warmup: 6e-3·(1 − t/total)^0.5.
  EXPECT_NEAR(s.lr(3519), 6e-3 * std::sqrt(1.0 - 3519.0 / 7038.0), 1e-9);
  EXPECT_LT(s.lr(7000), 6e-4);
}

TEST(LrSchedule, ShorterWarmupGivesLargerEarlyRates) {
  // The K-FAC run warms up in 600 steps instead of 2000 — its LR dominates
  // until step ~2000 (paper Figure 8).
  PolyWarmupSchedule nvlamb(6e-3, 2000, 7038);
  PolyWarmupSchedule kfac(6e-3, 600, 7038);
  for (std::size_t t : {100u, 500u, 1000u, 1500u, 1700u})
    EXPECT_GT(kfac.lr(t), nvlamb.lr(t)) << "t=" << t;
  // And they coincide after warmup.
  EXPECT_NEAR(kfac.lr(2500), nvlamb.lr(2500), 1e-9);
}

TEST(LrSchedule, RejectsBadConfigs) {
  EXPECT_THROW(PolyWarmupSchedule(0.0, 10, 100), Error);
  EXPECT_THROW(PolyWarmupSchedule(1.0, 100, 100), Error);
}

// Ill-conditioned softmax classification with a linear teacher: feature c
// has scale ∝ 3^c, so the input covariance A is badly conditioned and plain
// SGD crawls along the small-scale directions. K-FAC normalizes A (and the
// empirical Fisher of a cross-entropy loss is a faithful curvature
// estimate, unlike plain regression residuals), so at the SAME learning
// rate it converges measurably faster.
struct IllConditionedProblem {
  IllConditionedProblem() : rng(31), layer(6, 4, rng, "layer", 0.0) {
    teacher = Matrix::randn(6, 4, rng);
  }

  double run_step(Optimizer& opt, double lr) {
    Matrix x = Matrix::randn(64, 6, rng);
    for (std::size_t r = 0; r < x.rows(); ++r)
      for (std::size_t c = 0; c < 6; ++c)
        x(r, c) *= std::pow(3.0, static_cast<double>(c)) / 81.0;
    const Matrix teacher_logits = matmul(x, teacher);
    std::vector<int> labels;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < 4; ++c)
        if (teacher_logits(r, c) > teacher_logits(r, best)) best = c;
      labels.push_back(static_cast<int>(best));
    }
    const Matrix y = layer.forward(x, true);
    const auto res = softmax_cross_entropy(y, labels);
    zero_grads(layer.params());
    layer.backward(res.dlogits);
    opt.step(layer.params(), lr);
    return res.loss;
  }

  Rng rng;
  Linear layer;
  Matrix teacher;
};

TEST(KfacOptimizer, BeatsSgdOnIllConditionedClassification) {
  const double lr = 0.5;
  IllConditionedProblem sgd_problem;
  Sgd sgd;
  double sgd_loss = 0.0;
  for (int i = 0; i < 200; ++i) sgd_loss = sgd_problem.run_step(sgd, lr);

  IllConditionedProblem kfac_problem;
  KfacOptimizerOptions opts;
  opts.kfac.damping = 1e-2;
  KfacOptimizer kfac({&kfac_problem.layer}, std::make_unique<Sgd>(), opts);
  double kfac_loss = 0.0;
  for (int i = 0; i < 200; ++i) kfac_loss = kfac_problem.run_step(kfac, lr);

  EXPECT_LT(kfac_loss, sgd_loss * 0.7)
      << "kfac=" << kfac_loss << " sgd=" << sgd_loss;
}

TEST(KfacOptimizer, IntervalsControlRefreshCounts) {
  Rng rng(37);
  Linear l(3, 3, rng, "l");
  KfacOptimizerOptions opts;
  opts.curvature_interval = 2;
  opts.inverse_interval = 4;
  KfacOptimizer opt({&l}, std::make_unique<Sgd>(), opts);
  const Matrix x = Matrix::randn(4, 3, rng);
  const Matrix dy = Matrix::randn(4, 3, rng);
  for (int i = 0; i < 8; ++i) {
    zero_grads(l.params());
    l.forward(x, true);
    l.backward(dy);
    opt.step(l.params(), 0.0);
  }
  // Steps 0,2,4,6 → 4 curvature updates; steps 0,4 → 2 inversions.
  EXPECT_EQ(opt.engine().state(0).curvature_updates, 4u);
  EXPECT_EQ(opt.engine().state(0).inverse_updates, 2u);
}

TEST(KfacOptimizer, RejectsNullBase) {
  Rng rng(41);
  Linear l(2, 2, rng, "l");
  EXPECT_THROW(KfacOptimizer({&l}, nullptr, KfacOptimizerOptions{}), Error);
}

}  // namespace
}  // namespace pf
