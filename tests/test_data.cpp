// Tests for src/data: synthetic corpus statistics and MLM/NSP batching.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/common/check.h"
#include "src/data/mlm_batcher.h"
#include "src/data/synthetic_corpus.h"

namespace pf {
namespace {

TEST(SyntheticCorpus, StreamsStayInWordRange) {
  SyntheticCorpus corpus(CorpusConfig{});
  Rng rng(1);
  const auto stream = corpus.sample_stream(1000, rng);
  EXPECT_EQ(stream.size(), 1000u);
  for (int t : stream) {
    EXPECT_GE(t, SpecialTokens::kFirstWord);
    EXPECT_LT(t, static_cast<int>(corpus.config().vocab));
  }
}

TEST(SyntheticCorpus, HasLearnableBigramStructure) {
  // The conditional entropy must be far below the uniform bound ln(V):
  // that headroom is what the MLM model learns.
  CorpusConfig cfg;
  SyntheticCorpus corpus(cfg);
  const double h = corpus.conditional_entropy();
  const double uniform =
      std::log(static_cast<double>(corpus.n_words()));
  EXPECT_LT(h, 0.75 * uniform);
  EXPECT_GT(h, 0.1);  // but not deterministic
}

TEST(SyntheticCorpus, ContinuationFollowsTheChainStatistics) {
  // Continuations should hit the preferred-successor set at roughly
  // structure_prob rate; restarts should not.
  CorpusConfig cfg;
  cfg.structure_prob = 0.9;
  SyntheticCorpus corpus(cfg);
  Rng rng(5);
  // Empirical check via repeated single-step continuations of one token.
  const int probe = SpecialTokens::kFirstWord + 2;
  std::map<int, int> counts;
  for (int i = 0; i < 4000; ++i)
    ++counts[corpus.continue_stream(probe, 1, rng)[0]];
  // Top-3 successors should take the lion's share under 0.9 structure.
  std::vector<int> freqs;
  for (auto& [tok, c] : counts) freqs.push_back(c);
  std::sort(freqs.rbegin(), freqs.rend());
  int top3 = 0;
  for (std::size_t i = 0; i < 3 && i < freqs.size(); ++i) top3 += freqs[i];
  EXPECT_GT(top3, 4000 * 0.7);
}

TEST(SyntheticCorpus, DeterministicStructureAcrossInstances) {
  CorpusConfig cfg;
  SyntheticCorpus c1(cfg), c2(cfg);
  Rng r1(9), r2(9);
  EXPECT_EQ(c1.sample_stream(50, r1), c2.sample_stream(50, r2));
}

TEST(SyntheticCorpus, RejectsTinyVocab) {
  CorpusConfig cfg;
  cfg.vocab = 6;
  EXPECT_THROW(SyntheticCorpus{cfg}, Error);
}

TEST(MlmBatcher, BatchShapesAndSpecialTokenLayout) {
  SyntheticCorpus corpus(CorpusConfig{});
  MlmBatcherConfig bc;
  bc.seq_len = 16;
  MlmBatcher batcher(corpus, bc);
  Rng rng(11);
  const auto batch = batcher.next_batch(8, rng);
  EXPECT_EQ(batch.batch, 8u);
  EXPECT_EQ(batch.seq, 16u);
  EXPECT_EQ(batch.ids.size(), 8u * 16u);
  EXPECT_EQ(batch.nsp_labels.size(), 8u);
  for (std::size_t b = 0; b < 8; ++b) {
    EXPECT_EQ(batch.ids[b * 16], SpecialTokens::kCls);
    // Segment 0 then segment 1, never decreasing.
    for (std::size_t i = 1; i < 16; ++i)
      EXPECT_GE(batch.segments[b * 16 + i], batch.segments[b * 16 + i - 1]);
    // Exactly two separators (possibly masked out — count via labels too).
    EXPECT_EQ(batch.segments[b * 16 + 15], 1);
  }
}

TEST(MlmBatcher, MaskingRateCloseToConfig) {
  SyntheticCorpus corpus(CorpusConfig{});
  MlmBatcherConfig bc;
  bc.seq_len = 32;
  MlmBatcher batcher(corpus, bc);
  Rng rng(13);
  std::size_t masked = 0, maskable = 0, mask_tok = 0;
  for (int it = 0; it < 50; ++it) {
    const auto batch = batcher.next_batch(16, rng);
    for (std::size_t i = 0; i < batch.ids.size(); ++i) {
      if (batch.mlm_labels[i] >= 0) {
        ++masked;
        if (batch.ids[i] == SpecialTokens::kMask) ++mask_tok;
      }
      maskable += batch.mlm_labels[i] >= 0 ||
                  batch.ids[i] >= SpecialTokens::kFirstWord;
    }
  }
  const double rate = static_cast<double>(masked) /
                      static_cast<double>(maskable);
  EXPECT_NEAR(rate, 0.15, 0.02);
  // 80% of masked positions show [MASK].
  EXPECT_NEAR(static_cast<double>(mask_tok) / static_cast<double>(masked),
              0.8, 0.04);
}

TEST(MlmBatcher, LabelsMatchOriginalTokensWhenKept) {
  SyntheticCorpus corpus(CorpusConfig{});
  MlmBatcherConfig bc;
  bc.seq_len = 16;
  bc.mask_token_frac = 0.0;
  bc.random_token_frac = 0.0;  // keep-only masking
  MlmBatcher batcher(corpus, bc);
  Rng rng(17);
  const auto batch = batcher.next_batch(8, rng);
  for (std::size_t i = 0; i < batch.ids.size(); ++i) {
    if (batch.mlm_labels[i] >= 0) {
      EXPECT_EQ(batch.ids[i], batch.mlm_labels[i]);
    }
  }
}

TEST(MlmBatcher, NspLabelsRoughlyBalanced) {
  SyntheticCorpus corpus(CorpusConfig{});
  MlmBatcher batcher(corpus, MlmBatcherConfig{});
  Rng rng(19);
  int next = 0, total = 0;
  for (int it = 0; it < 40; ++it) {
    const auto batch = batcher.next_batch(16, rng);
    for (int l : batch.nsp_labels) {
      next += l;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(next) / total, 0.5, 0.08);
}

TEST(MlmBatcher, RejectsShortSequences) {
  SyntheticCorpus corpus(CorpusConfig{});
  MlmBatcherConfig bc;
  bc.seq_len = 4;
  EXPECT_THROW(MlmBatcher(corpus, bc), Error);
}

}  // namespace
}  // namespace pf
