// Tests for src/train: the pretraining loop actually learns, and the
// convergence comparison machinery behind Figure 7 works as specified.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/check.h"
#include "src/optim/adam.h"
#include "src/optim/lamb.h"
#include "src/train/convergence.h"
#include "src/train/trainer.h"

namespace pf {
namespace {

BertConfig tiny_config() {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 12;
  return cfg;
}

TEST(Trainer, LossDecreasesUnderAdam) {
  const auto cfg = tiny_config();
  Rng rng(3);
  BertModel model(cfg, rng);
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);

  TrainerConfig tc;
  tc.batch_size = 8;
  tc.total_steps = 300;
  tc.schedule = PolyWarmupSchedule(3e-3, 10, 300);
  Trainer trainer(model, batcher, std::make_unique<Adam>(), tc);
  const auto trace = trainer.run();
  ASSERT_EQ(trace.loss.size(), 300u);
  // Average of first vs last 20 steps.
  double head = 0, tail = 0;
  for (int i = 0; i < 20; ++i) {
    head += trace.loss[static_cast<std::size_t>(i)];
    tail += trace.loss[trace.loss.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(tail / 20, head / 20 - 0.3);
  // Initial loss ≈ ln(vocab) + ln(2).
  EXPECT_NEAR(trace.loss.front(),
              std::log(static_cast<double>(cfg.vocab)) + std::log(2.0), 1.2);
}

TEST(Trainer, TraceRecordsScheduleLr) {
  const auto cfg = tiny_config();
  Rng rng(5);
  BertModel model(cfg, rng);
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  TrainerConfig tc;
  tc.batch_size = 2;
  tc.total_steps = 20;
  tc.schedule = PolyWarmupSchedule(1e-2, 5, 20);
  Trainer trainer(model, batcher, std::make_unique<Lamb>(), tc);
  const auto trace = trainer.run();
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(trace.lr[i], tc.schedule.lr(i));
}

TEST(Convergence, FindsCrossingPoint) {
  TrainTrace base, chal;
  // Baseline: linear 10 → 5 over 100 steps. Challenger: 10 → 5 in 40 steps
  // then flat.
  for (int i = 0; i < 100; ++i)
    base.loss.push_back(10.0 - 5.0 * i / 99.0);
  for (int i = 0; i < 100; ++i)
    chal.loss.push_back(i < 40 ? 10.0 - 5.0 * i / 39.0 : 5.0);
  const auto cmp = compare_convergence(base, chal, 1.0, 1.2, 1);
  EXPECT_EQ(cmp.baseline_steps, 100);
  EXPECT_NEAR(cmp.challenger_steps_to_match, 39, 3);
  EXPECT_NEAR(cmp.step_fraction, 0.4, 0.05);
  // Time fraction folds in the 20% slower step.
  EXPECT_NEAR(cmp.time_fraction, 0.4 * 1.2, 0.06);
}

TEST(Convergence, HandlesChallengerNeverReaching) {
  TrainTrace base, chal;
  for (int i = 0; i < 50; ++i) {
    base.loss.push_back(1.0);
    chal.loss.push_back(2.0);
  }
  const auto cmp = compare_convergence(base, chal, 1.0, 1.0, 1);
  EXPECT_EQ(cmp.challenger_steps_to_match, -1);
  EXPECT_DOUBLE_EQ(cmp.step_fraction, 1.0);
}

TEST(Convergence, IgnoreFirstSkipsEarlyTransients) {
  // The paper ignores the fluctuation around step 1000; a spuriously low
  // dip early in the curve must not count.
  TrainTrace base, chal;
  for (int i = 0; i < 100; ++i) base.loss.push_back(5.0);
  for (int i = 0; i < 100; ++i)
    chal.loss.push_back(i == 3 ? 1.0 : (i < 80 ? 8.0 : 4.0));
  const auto with_ignore = compare_convergence(base, chal, 1.0, 1.0, 0, 10);
  EXPECT_GT(with_ignore.challenger_steps_to_match, 70);
}

TEST(Convergence, SmoothedFinalLoss) {
  TrainTrace t;
  for (int i = 0; i < 50; ++i)
    t.loss.push_back(2.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  EXPECT_NEAR(t.final_loss_smoothed(10), 2.0, 0.05);
}

}  // namespace
}  // namespace pf
