// Tests for src/serve — the continuous-batching inference serving engine.
//
// The acceptance spine is the determinism grid: replaying one fixed arrival
// trace through every (workers × stages) combination must produce bitwise-
// identical per-request logits, themselves bitwise-identical to a serial
// one-request-at-a-time BertModel::forward. That only holds because every
// forward op is row/sequence-independent (batch composition, slot
// assignment and padding neighbours cannot leak into a request's rows) —
// so these tests double as the enforcement of that contract.
//
// The concurrent engine suites run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/nn/bert.h"
#include "src/nn/stage_partition.h"
#include "src/serve/batcher.h"
#include "src/serve/request_queue.h"
#include "src/serve/serving_engine.h"
#include "src/trace/timeline.h"

namespace pf {
namespace {

BertConfig serving_bert() {
  BertConfig cfg;
  cfg.vocab = 48;
  cfg.d_model = 32;
  cfg.d_ff = 64;
  cfg.n_heads = 4;
  cfg.n_layers = 4;  // divisible across the stage grid {1, 2, 4}
  cfg.seq_len = 16;
  return cfg;
}

// Fixed arrival trace: n requests with deterministic tokens and varying
// lengths (1..seq_len), ids 0..n-1.
std::vector<InferRequest> fixed_trace(std::size_t n, const BertConfig& cfg,
                                      std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<InferRequest> rs;
  for (std::size_t i = 0; i < n; ++i) {
    InferRequest r;
    r.id = i;
    const std::size_t len = 1 + rng.next_u64() % cfg.seq_len;
    for (std::size_t t = 0; t < len; ++t)
      r.ids.push_back(static_cast<int>(rng.next_u64() % cfg.vocab));
    // Half the requests carry an explicit segment vector, half rely on the
    // batcher's all-zero default.
    if (i % 2 == 0)
      for (std::size_t t = 0; t < len; ++t)
        r.segments.push_back(static_cast<int>(t % 2));
    rs.push_back(std::move(r));
  }
  return rs;
}

void expect_bitwise_equal(const Matrix& a, const Matrix& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      ASSERT_EQ(a(r, c), b(r, c))
          << what << " diverges at (" << r << ", " << c << ")";
}

// Serial one-request-at-a-time reference: each request forwarded alone
// through the unpartitioned model, padded exactly like the engine pads it.
std::vector<BertInferOutput> serial_reference(
    BertModel& model, const std::vector<InferRequest>& trace, int pad_id) {
  std::vector<BertInferOutput> outs;
  for (const InferRequest& r : trace) {
    const BertBatch b =
        make_inference_batch({r}, model.config().seq_len, pad_id);
    outs.push_back(model.forward(b, /*training=*/false));
  }
  return outs;
}

// ---------------------------------------------------------------------------
// RequestQueue

TEST(ServingQueue, FifoPopAndCloseSemantics) {
  RequestQueue q;
  for (std::uint64_t i = 0; i < 5; ++i) {
    InferRequest r;
    r.id = i;
    r.ids = {1};
    q.push(std::move(r));
  }
  EXPECT_EQ(q.size(), 5u);
  auto got = q.wait_pop(/*max_n=*/3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].id, 0u);
  EXPECT_EQ(got[2].id, 2u);
  // min_n=1 is already satisfied by the 2 remaining: no blocking.
  got = q.wait_pop(/*max_n=*/3);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 3u);
  EXPECT_FALSE(q.drained());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_TRUE(q.drained());
  // Closed and drained: empty pop, forever.
  EXPECT_TRUE(q.wait_pop(4).empty());
  InferRequest late;
  late.ids = {1};
  EXPECT_THROW(q.push(std::move(late)), Error);
}

TEST(ServingQueue, WaitPopBlocksUntilMinOrClose) {
  RequestQueue q;
  std::vector<std::size_t> sizes;
  std::thread consumer([&q, &sizes] {
    // Wants 4, min 4 — must block past the first 2 pushes, then close()
    // releases the remainder.
    sizes.push_back(q.wait_pop(4, /*min_n=*/4, /*timeout_seconds=*/30.0).size());
  });
  InferRequest a, b;
  a.ids = b.ids = {1};
  q.push(std::move(a));
  q.push(std::move(b));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], 2u);  // close() returns what remains, not min_n
}

TEST(ServingQueue, WaitPopTimesOutOnStuckProducer) {
  RequestQueue q;
  EXPECT_THROW(q.wait_pop(1, 1, /*timeout_seconds=*/0.05), Error);
}

TEST(ServingQueue, PushStampsEnqueueUnlessPreset) {
  RequestQueue q;
  InferRequest fresh;
  fresh.ids = {1};
  const double before = now_seconds();
  q.push(std::move(fresh));
  InferRequest replay;
  replay.ids = {1};
  replay.enqueue_seconds = 1.25;  // synthetic replay arrival time
  q.push(std::move(replay));
  auto got = q.wait_pop(2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_GE(got[0].enqueue_seconds, before);
  EXPECT_DOUBLE_EQ(got[1].enqueue_seconds, 1.25);
}

// ---------------------------------------------------------------------------
// Batcher: the padding policy and slot machinery, pinned.

TEST(ServingBatcher, PaddingPolicyPinned) {
  const std::size_t seq = 6;
  const int pad = 9;
  InferRequest a;
  a.id = 1;
  a.ids = {10, 11, 12};
  a.segments = {0, 1};  // shorter than ids: tail extends with 0
  InferRequest b;
  b.id = 2;
  b.ids = {20, 21, 22, 23, 24, 25};  // exactly seq_len, no segments at all
  const BertBatch batch = make_inference_batch({a, b}, seq, pad);
  EXPECT_EQ(batch.batch, 2u);
  EXPECT_EQ(batch.seq, seq);
  const std::vector<int> want_ids = {10, 11, 12, pad, pad, pad,
                                     20, 21, 22, 23,  24,  25};
  EXPECT_EQ(batch.ids, want_ids);
  const std::vector<int> want_seg = {0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(batch.segments, want_seg);
  // Labels are inert placeholders: all -1 / all 0.
  EXPECT_EQ(batch.mlm_labels, std::vector<int>(2 * seq, -1));
  EXPECT_EQ(batch.nsp_labels, std::vector<int>(2, 0));
}

TEST(ServingBatcher, RejectsMalformedRequests) {
  InferRequest overlong;
  overlong.ids = {1, 2, 3, 4, 5};
  EXPECT_THROW(make_inference_batch({overlong}, /*seq_len=*/4, 0), Error);

  InferRequest empty;
  EXPECT_THROW(make_inference_batch({empty}, 4, 0), Error);

  InferRequest seg_overrun;
  seg_overrun.ids = {1, 2};
  seg_overrun.segments = {0, 1, 0};  // segments longer than ids
  EXPECT_THROW(make_inference_batch({seg_overrun}, 4, 0), Error);

  EXPECT_THROW(make_inference_batch({}, 4, 0), Error);
}

TEST(ServingBatcher, BatchPolicyNames) {
  EXPECT_STREQ(batch_policy_name(BatchPolicy::kContinuous), "continuous");
  EXPECT_STREQ(batch_policy_name(BatchPolicy::kStatic), "static");
  EXPECT_EQ(batch_policy_from_string("continuous"), BatchPolicy::kContinuous);
  EXPECT_EQ(batch_policy_from_string("static"), BatchPolicy::kStatic);
  EXPECT_THROW(batch_policy_from_string("adaptive"), Error);
}

TEST(ServingBatcher, LowestFreeSlotAssignmentAndReuseAccounting) {
  auto req = [](std::uint64_t id) {
    InferRequest r;
    r.id = id;
    r.ids = {1, 2};
    return r;
  };
  ContinuousBatcher batcher(/*max_batch=*/2, /*seq_len=*/4, /*pad_id=*/0,
                            /*n_slots=*/4);
  EXPECT_EQ(batcher.free_slots(), 4u);

  MicroBatch m0 = batcher.form({req(0), req(1)});
  EXPECT_EQ(m0.slots, (std::vector<int>{0, 1}));
  EXPECT_EQ(m0.slot_reused, (std::vector<bool>{false, false}));
  MicroBatch m1 = batcher.form({req(2)});
  EXPECT_EQ(m1.slots, (std::vector<int>{2}));
  EXPECT_EQ(batcher.free_slots(), 1u);

  // m0 completes; its slots refill while m1 is still outstanding — the
  // lowest-free-slot rule hands 0 and 1 back out, flagged as reused.
  batcher.release(m0);
  EXPECT_EQ(batcher.free_slots(), 3u);
  MicroBatch m2 = batcher.form({req(3), req(4)});
  EXPECT_EQ(m2.slots, (std::vector<int>{0, 1}));
  EXPECT_EQ(m2.slot_reused, (std::vector<bool>{true, true}));
  EXPECT_EQ(batcher.slot_reuses(), 2u);
  batcher.release(m1);
  batcher.release(m2);
  EXPECT_EQ(batcher.free_slots(), 4u);
}

// ---------------------------------------------------------------------------
// Latency stats

TEST(ServingStats, NearestRankPercentiles) {
  // 1..100 shuffled: nearest-rank p is exactly p.
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(xs, 1.0), 1.0);
  // Small n: ceil(p/100·n) ranks. n=4 → p50 is the 2nd smallest, p99 the
  // 4th; n=1 → every percentile is the sample.
  const std::vector<double> four = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(four, 50.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank(four, 99.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_nearest_rank({7.0}, 50.0), 7.0);
  EXPECT_THROW(percentile_nearest_rank({}, 50.0), Error);
  EXPECT_THROW(percentile_nearest_rank({1.0}, 0.0), Error);
  EXPECT_THROW(percentile_nearest_rank({1.0}, 101.0), Error);
}

TEST(ServingStats, LatencyStatsAggregates) {
  const std::vector<double> lats = {4.0, 1.0, 3.0, 2.0};
  const LatencyStats s = compute_latency_stats(lats);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
  EXPECT_DOUBLE_EQ(s.p99, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  const LatencyStats empty = compute_latency_stats({});
  EXPECT_EQ(empty.n, 0u);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
}

// ---------------------------------------------------------------------------
// Inference forwards skip backward caches (satellite 1).

TEST(ServingInference, InferenceForwardLeavesNoCaches) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(3, cfg);
  const BertBatch batch = make_inference_batch(trace, cfg.seq_len, 0);

  const BertInferOutput out = model.forward(batch, /*training=*/false);
  EXPECT_EQ(out.mlm_logits.rows(), batch.batch * cfg.seq_len);
  EXPECT_EQ(out.nsp_logits.rows(), batch.batch);
  for (Linear* l : model.kfac_linears()) {
    EXPECT_TRUE(l->cached_input().empty());
    EXPECT_FALSE(l->has_kfac_caches());
  }
  EXPECT_TRUE(model.mlm_head().cached_input().empty());
  EXPECT_TRUE(model.nsp_head().cached_input().empty());

  // training=true is the contrast: caches stay populated for a backward.
  (void)model.forward(batch, /*training=*/true);
  for (Linear* l : model.kfac_linears())
    EXPECT_FALSE(l->cached_input().empty());
}

TEST(ServingInference, StageInferLeavesStashEmptyAndMatchesModelForward) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(2, cfg);
  const BertBatch batch = make_inference_batch(trace, cfg.seq_len, 0);
  const BertInferOutput want = model.forward(batch, /*training=*/false);

  BertStagePartition part(model, /*n_stages=*/2);
  Matrix h = part.stage(0).infer(batch, Matrix(), ExecContext::defaults());
  BertInferOutput got;
  part.stage(1).infer(batch, std::move(h), ExecContext::defaults(), &got);
  expect_bitwise_equal(want.mlm_logits, got.mlm_logits, "mlm via stages");
  expect_bitwise_equal(want.nsp_logits, got.nsp_logits, "nsp via stages");
  // No backward is coming: infer() must not have stashed anything.
  EXPECT_EQ(part.stage(0).stash_bytes(), 0u);
  EXPECT_EQ(part.stage(1).stash_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// The engine: determinism grid, refill-mid-flight, accounting.

TEST(ServingEngine, DeterministicReplayMatchesSerialAcrossWorkersAndStages) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(10, cfg);
  const auto want = serial_reference(model, trace, /*pad_id=*/0);

  for (const int workers : {0, 1, 2, 4}) {
    for (const int stages : {1, 2, 4}) {
      ServingEngineConfig ec;
      ec.n_stages = stages;
      ec.max_batch = 3;  // deliberately not a divisor of the trace length
      ec.workers = workers;
      ServingEngine engine(model, ec);

      RequestQueue q;
      q.push_all(trace);
      q.close();  // replay mode: the full trace is visible up front
      const ServingReport rep = engine.run(q);

      ASSERT_EQ(rep.records.size(), trace.size())
          << "workers=" << workers << " stages=" << stages;
      EXPECT_EQ(rep.admitted_total, trace.size());
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::string at = "workers=" + std::to_string(workers) +
                               " stages=" + std::to_string(stages) +
                               " request=" + std::to_string(i);
        ASSERT_EQ(rep.records[i].id, trace[i].id) << at;
        expect_bitwise_equal(rep.records[i].output.mlm_logits,
                             want[i].mlm_logits, "mlm " + at);
        expect_bitwise_equal(rep.records[i].output.nsp_logits,
                             want[i].nsp_logits, "nsp " + at);
      }
    }
  }
}

TEST(ServingEngine, StaticPolicyMatchesSerialToo) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(8, cfg);
  const auto want = serial_reference(model, trace, 0);

  ServingEngineConfig ec;
  ec.n_stages = 2;
  ec.max_batch = 2;
  ec.workers = 2;
  ec.policy = BatchPolicy::kStatic;
  ServingEngine engine(model, ec);
  RequestQueue q;
  q.push_all(trace);
  q.close();
  const ServingReport rep = engine.run(q);

  ASSERT_EQ(rep.records.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    expect_bitwise_equal(rep.records[i].output.mlm_logits, want[i].mlm_logits,
                         "static mlm request " + std::to_string(i));
    expect_bitwise_equal(rep.records[i].output.nsp_logits, want[i].nsp_logits,
                         "static nsp request " + std::to_string(i));
  }
  // Static = drain between batches: Admit(m+1) depends on Complete(m), so
  // no admission can ever observe a micro in flight. Structural, not timing.
  EXPECT_EQ(rep.admitted_while_in_flight, 0u);
  EXPECT_EQ(rep.slots_refilled_in_flight, 0u);
  EXPECT_EQ(rep.n_micros, trace.size() / ec.max_batch);
}

TEST(ServingEngine, ContinuousBatchingRefillsSlotsMidFlight) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  // 8 micros of 2 through a 2-stage pipe with max_inflight defaulting to
  // 3: the slot pool is 6, so micro 3 onward reuses freed slots. With a
  // worker driving the other lane, admissions land while earlier micros
  // are mid-forward — a forward is ~1000x the work of a queue pop, so the
  // in-flight admission count is positive on every plausible interleaving.
  const auto trace = fixed_trace(16, cfg);

  ServingEngineConfig ec;
  ec.n_stages = 2;
  ec.max_batch = 2;
  ec.workers = 2;
  ServingEngine engine(model, ec);
  RequestQueue q;
  q.push_all(trace);
  q.close();
  const ServingReport rep = engine.run(q);

  ASSERT_EQ(rep.records.size(), trace.size());
  EXPECT_EQ(rep.n_micros, 8u);
  EXPECT_GT(rep.admitted_while_in_flight, 0u)
      << "continuous batching never admitted into a live pipeline";
  EXPECT_GT(rep.slots_refilled_in_flight, 0u)
      << "no freed slot was handed to a new request mid-flight";
}

TEST(ServingEngine, ReportAccountingAndTimeline) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(6, cfg);

  ServingEngineConfig ec;
  ec.n_stages = 2;
  ec.max_batch = 2;
  ec.workers = 1;
  ServingEngine engine(model, ec);
  RequestQueue q;
  q.push_all(trace);
  q.close();
  const ServingReport rep = engine.run(q);

  ASSERT_EQ(rep.records.size(), 6u);
  for (std::size_t i = 0; i < rep.records.size(); ++i) {
    const RequestRecord& r = rep.records[i];
    EXPECT_EQ(r.id, static_cast<std::uint64_t>(i));  // sorted by id
    EXPECT_GE(r.micro, 0);
    EXPECT_GE(r.slot, 0);
    // enqueue happened before run() (possibly negative vs the epoch);
    // admit and complete happen inside it, in order.
    EXPECT_LE(r.enqueue, r.admit);
    EXPECT_GE(r.admit, 0.0);
    EXPECT_GT(r.complete, r.admit);
    EXPECT_GT(r.latency(), 0.0);
  }
  EXPECT_EQ(rep.latency.n, 6u);
  EXPECT_GT(rep.latency.p50, 0.0);
  EXPECT_LE(rep.latency.p50, rep.latency.p95);
  EXPECT_LE(rep.latency.p95, rep.latency.p99);
  EXPECT_LE(rep.latency.p99, rep.latency.max);
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_GT(rep.throughput_rps, 0.0);
  EXPECT_EQ(rep.deadline_misses, 0u);  // default deadline is infinite

  // The realized timeline carries one lane per stage; admissions appear on
  // lane 0 as kAdmission (idle-classified), forwards on their stage lanes.
  ASSERT_EQ(rep.timeline.n_devices(), 2u);
  std::size_t admissions = 0, forwards = 0;
  for (const Interval& iv : rep.timeline.all_intervals()) {
    if (iv.kind == WorkKind::kAdmission) {
      EXPECT_EQ(iv.device, 0u);
      ++admissions;
    } else {
      EXPECT_EQ(iv.kind, WorkKind::kForward);
      EXPECT_EQ(iv.device, static_cast<std::size_t>(iv.stage));
      ++forwards;
    }
    EXPECT_LE(iv.start, iv.end);
  }
  // 3 micros admitted + the end-of-stream admission that popped nothing.
  EXPECT_EQ(admissions, 4u);
  EXPECT_EQ(forwards, 3u * 2u);
}

TEST(ServingEngine, DeadlineMissesCounted) {
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  auto trace = fixed_trace(4, cfg);
  for (auto& r : trace) r.deadline_seconds = 0.0;  // unmeetable

  ServingEngineConfig ec;
  ec.n_stages = 1;
  ec.max_batch = 2;
  ServingEngine engine(model, ec);
  RequestQueue q;
  q.push_all(trace);
  q.close();
  const ServingReport rep = engine.run(q);
  EXPECT_EQ(rep.deadline_misses, 4u);
}

TEST(ServingEngine, RunIsRepeatable) {
  // Two runs of one engine are independent (channels cleared, fresh slot
  // pool) and bitwise identical on the same replay trace.
  const BertConfig cfg = serving_bert();
  Rng rng(7);
  BertModel model(cfg, rng);
  const auto trace = fixed_trace(5, cfg);

  ServingEngineConfig ec;
  ec.n_stages = 2;
  ec.max_batch = 2;
  ec.workers = 2;
  ServingEngine engine(model, ec);
  std::vector<ServingReport> reps;
  for (int run = 0; run < 2; ++run) {
    RequestQueue q;
    q.push_all(trace);
    q.close();
    reps.push_back(engine.run(q));
  }
  ASSERT_EQ(reps[0].records.size(), reps[1].records.size());
  for (std::size_t i = 0; i < reps[0].records.size(); ++i) {
    expect_bitwise_equal(reps[0].records[i].output.mlm_logits,
                         reps[1].records[i].output.mlm_logits,
                         "mlm across runs, request " + std::to_string(i));
    expect_bitwise_equal(reps[0].records[i].output.nsp_logits,
                         reps[1].records[i].output.nsp_logits,
                         "nsp across runs, request " + std::to_string(i));
  }
}

}  // namespace
}  // namespace pf
