// Tests for asynchronous pipelines (Appendix C.1) and heterogeneous
// per-stage costs (§5 non-Transformer discussion).
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/pipeline/async_pipeline.h"
#include "src/pipeline/gpipe.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {
namespace {

StepCosts unit_costs() {
  StepCosts c;
  c.t_forward = 1.0;
  c.t_backward = 2.0;
  return c;
}

TEST(StageCostScale, ScalesPerStageDurations) {
  StepCosts c = unit_costs();
  c.stage_cost_scale = {1.0, 3.0};
  const auto spec = make_gpipe(2, 1);
  const auto res = simulate_step(spec, c);
  EXPECT_DOUBLE_EQ(res.op_end({OpType::kForward, 0, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(res.op_end({OpType::kForward, 0, 1, 0}), 1.0 + 3.0);
  // Stage-1 backward costs 6.
  EXPECT_DOUBLE_EQ(res.op_end({OpType::kBackward, 0, 1, 0}), 4.0 + 6.0);
}

TEST(StageCostScale, SlowestStageGatesThroughput) {
  StepCosts uniform = unit_costs();
  StepCosts skew = unit_costs();
  skew.stage_cost_scale = {2.0, 1.0, 0.5, 0.5};
  const auto u = simulate_step(make_gpipe(4, 8), uniform);
  const auto s = simulate_step(make_gpipe(4, 8), skew);
  // Same mean stage cost, but the imbalanced pipeline is strictly slower
  // per step and less utilized.
  EXPECT_GT(s.pipe_makespan, u.pipe_makespan);
  EXPECT_LT(s.timeline.utilization(0.0, s.pipe_makespan),
            u.timeline.utilization(0.0, u.pipe_makespan));
}

TEST(AsyncPipeline, NearFullUtilizationInSteadyState) {
  const auto rep = simulate_async_1f1b(4, 4, 8, unit_costs());
  EXPECT_GT(rep.utilization, 0.95);
}

TEST(AsyncPipeline, BeatsSynchronousUtilization) {
  StepCosts c = unit_costs();
  const auto sync = simulate_step(make_1f1b(4, 4), c);
  const double sync_util =
      sync.timeline.utilization(0.0, sync.pipe_makespan);
  const auto async = simulate_async_1f1b(4, 4, 8, c);
  EXPECT_GT(async.utilization, sync_util + 0.2);
}

TEST(AsyncPipeline, StalenessBoundedByDepthAndFresherDownstream) {
  const auto rep = simulate_async_1f1b(4, 4, 8, unit_costs());
  ASSERT_EQ(rep.staleness_per_stage.size(), 4u);
  for (double s : rep.staleness_per_stage) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 4.0);  // at most D mini-batches stale
  }
  // The last stage computes gradients immediately after its update window —
  // the freshest weights in the pipeline (PipeDream property).
  EXPECT_LE(rep.staleness_per_stage.back(), rep.staleness_per_stage.front());
  EXPECT_GE(rep.max_staleness, 1.0);  // asynchrony is real
}

TEST(AsyncPipeline, InlineUpdatesAppearOncePerIterationPerDevice) {
  StepCosts c = unit_costs();
  c.t_optimizer = 0.25;
  const auto rep = simulate_async_1f1b(4, 4, 6, c);
  for (std::size_t d = 0; d < 4; ++d) {
    int updates = 0;
    for (const auto& iv : rep.timeline.device_intervals(d))
      updates += iv.kind == WorkKind::kOptimizerUpdate;
    EXPECT_EQ(updates, 6);  // one per mini-batch, device-local
  }
}

TEST(AsyncPipeline, ThroughputApproachesIdeal) {
  // Ideal flushless throughput: one micro per (T_f + T_b) per device row.
  const auto rep = simulate_async_1f1b(4, 4, 12, unit_costs());
  const double ideal = 1.0 / 3.0;
  EXPECT_GT(rep.throughput_micros_per_time, 0.85 * ideal);
}

TEST(AsyncPipeline, RejectsDegenerateConfigs) {
  EXPECT_THROW(simulate_async_1f1b(1, 4, 4, unit_costs()), Error);
  EXPECT_THROW(simulate_async_1f1b(4, 4, 1, unit_costs()), Error);
}

TEST(AsyncPipeline, FlushlessScheduleIsARegistryEntry) {
  // The former separate simulation path is now a registry schedule:
  // traits carry flush = false, the factory emits 1F1B's program under the
  // flushless name, and the streaming simulation rides build_schedule.
  ASSERT_TRUE(schedule_registered("1f1b-flushless"));
  const ScheduleTraits& t = traits_of("1f1b-flushless");
  EXPECT_FALSE(t.flush);
  EXPECT_EQ(t.n_pipelines, 1);
  ScheduleParams p;
  p.n_stages = 4;
  p.n_micro = 8;
  const auto spec = build_schedule("1f1b-flushless", p);
  EXPECT_EQ(spec.name, "1f1b-flushless");
  const auto ref = make_1f1b(4, 8);
  ASSERT_EQ(spec.programs.size(), ref.programs.size());
  EXPECT_EQ(spec.programs, ref.programs);
  // Same report as the pre-registry path (the spec is the same program).
  const auto rep = simulate_async_1f1b(4, 4, 6, unit_costs());
  EXPECT_GT(rep.utilization, 0.9);
}

}  // namespace
}  // namespace pf
