// Tests for src/comm: alpha-beta collective models.
#include <gtest/gtest.h>

#include "src/comm/collectives.h"
#include "src/common/check.h"

namespace pf {
namespace {

const LinkModel kLink{10e9, 5e-6};  // 10 GB/s, 5 us

TEST(Collectives, SingleDeviceIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(recursive_doubling_allreduce_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(broadcast_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ring_allgather_time(kLink, 1e9, 1), 0.0);
}

TEST(Collectives, RingAllreduceMatchesClosedForm) {
  // 2(w-1)/w · n/β + 2(w-1)·α for w=4, n=1GB.
  const double expect = 2.0 * 3.0 / 4.0 * 1e9 / 10e9 + 2.0 * 3.0 * 5e-6;
  EXPECT_NEAR(ring_allreduce_time(kLink, 1e9, 4), expect, 1e-12);
}

TEST(Collectives, RingIsBandwidthOptimalForLargeMessages) {
  // For large n, ring < recursive doubling (which moves 2n/β).
  EXPECT_LT(ring_allreduce_time(kLink, 1e9, 8),
            recursive_doubling_allreduce_time(kLink, 1e9, 8));
}

TEST(Collectives, DoublingWinsForSmallMessages) {
  // For tiny n with many ranks, latency dominates: 2·log2(w) rounds beat
  // 2(w-1) rounds.
  EXPECT_LT(recursive_doubling_allreduce_time(kLink, 1e3, 64),
            ring_allreduce_time(kLink, 1e3, 64));
}

TEST(Collectives, BestPicksTheCheaper) {
  for (double bytes : {1e3, 1e6, 1e9}) {
    const double best = allreduce_best_time(kLink, bytes, 16);
    EXPECT_LE(best, ring_allreduce_time(kLink, bytes, 16));
    EXPECT_LE(best, recursive_doubling_allreduce_time(kLink, bytes, 16));
  }
}

TEST(Collectives, CrossoverSeparatesTheRegimes) {
  const double cross = allreduce_crossover_bytes(kLink, 16);
  EXPECT_GT(cross, 0.0);
  EXPECT_LT(ring_allreduce_time(kLink, cross * 10, 16),
            recursive_doubling_allreduce_time(kLink, cross * 10, 16));
  EXPECT_GT(ring_allreduce_time(kLink, cross / 10, 16),
            recursive_doubling_allreduce_time(kLink, cross / 10, 16));
}

TEST(Collectives, BroadcastLogarithmicInWorld) {
  const double b2 = broadcast_time(kLink, 1e6, 2);
  const double b16 = broadcast_time(kLink, 1e6, 16);
  EXPECT_NEAR(b16 / b2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(Collectives, AllgatherHalfOfAllreduce) {
  // Ring allgather is one phase of the two-phase ring allreduce.
  EXPECT_NEAR(2.0 * ring_allgather_time(kLink, 1e8, 8),
              ring_allreduce_time(kLink, 1e8, 8), 1e-12);
}

TEST(Collectives, P2PIsLatencyPlusTransfer) {
  EXPECT_NEAR(p2p_time(kLink, 1e7), 5e-6 + 1e-3, 1e-12);
}

TEST(Collectives, TimesMonotoneInBytesAndWorld) {
  double prev = 0.0;
  for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
    const double t = ring_allreduce_time(kLink, bytes, 8);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_GT(ring_allreduce_time(kLink, 1e8, 16),
            ring_allreduce_time(kLink, 1e8, 4));
}

}  // namespace
}  // namespace pf
