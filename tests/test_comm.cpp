// Tests for src/comm: alpha-beta collective models, and the StageChannel
// under genuinely concurrent producers (the serving engine admits micros
// from pool threads while earlier micros are still being forwarded, so
// interleaved senders are a real execution, not a hypothetical). The
// concurrent suites run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/comm/collectives.h"
#include "src/comm/stage_channel.h"
#include "src/common/check.h"
#include "src/linalg/matrix.h"

namespace pf {
namespace {

const LinkModel kLink{10e9, 5e-6};  // 10 GB/s, 5 us

TEST(Collectives, SingleDeviceIsFree) {
  EXPECT_DOUBLE_EQ(ring_allreduce_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(recursive_doubling_allreduce_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(broadcast_time(kLink, 1e9, 1), 0.0);
  EXPECT_DOUBLE_EQ(ring_allgather_time(kLink, 1e9, 1), 0.0);
}

TEST(Collectives, RingAllreduceMatchesClosedForm) {
  // 2(w-1)/w · n/β + 2(w-1)·α for w=4, n=1GB.
  const double expect = 2.0 * 3.0 / 4.0 * 1e9 / 10e9 + 2.0 * 3.0 * 5e-6;
  EXPECT_NEAR(ring_allreduce_time(kLink, 1e9, 4), expect, 1e-12);
}

TEST(Collectives, RingIsBandwidthOptimalForLargeMessages) {
  // For large n, ring < recursive doubling (which moves 2n/β).
  EXPECT_LT(ring_allreduce_time(kLink, 1e9, 8),
            recursive_doubling_allreduce_time(kLink, 1e9, 8));
}

TEST(Collectives, DoublingWinsForSmallMessages) {
  // For tiny n with many ranks, latency dominates: 2·log2(w) rounds beat
  // 2(w-1) rounds.
  EXPECT_LT(recursive_doubling_allreduce_time(kLink, 1e3, 64),
            ring_allreduce_time(kLink, 1e3, 64));
}

TEST(Collectives, BestPicksTheCheaper) {
  for (double bytes : {1e3, 1e6, 1e9}) {
    const double best = allreduce_best_time(kLink, bytes, 16);
    EXPECT_LE(best, ring_allreduce_time(kLink, bytes, 16));
    EXPECT_LE(best, recursive_doubling_allreduce_time(kLink, bytes, 16));
  }
}

TEST(Collectives, CrossoverSeparatesTheRegimes) {
  const double cross = allreduce_crossover_bytes(kLink, 16);
  EXPECT_GT(cross, 0.0);
  EXPECT_LT(ring_allreduce_time(kLink, cross * 10, 16),
            recursive_doubling_allreduce_time(kLink, cross * 10, 16));
  EXPECT_GT(ring_allreduce_time(kLink, cross / 10, 16),
            recursive_doubling_allreduce_time(kLink, cross / 10, 16));
}

TEST(Collectives, BroadcastLogarithmicInWorld) {
  const double b2 = broadcast_time(kLink, 1e6, 2);
  const double b16 = broadcast_time(kLink, 1e6, 16);
  EXPECT_NEAR(b16 / b2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(Collectives, AllgatherHalfOfAllreduce) {
  // Ring allgather is one phase of the two-phase ring allreduce.
  EXPECT_NEAR(2.0 * ring_allgather_time(kLink, 1e8, 8),
              ring_allreduce_time(kLink, 1e8, 8), 1e-12);
}

TEST(Collectives, P2PIsLatencyPlusTransfer) {
  EXPECT_NEAR(p2p_time(kLink, 1e7), 5e-6 + 1e-3, 1e-12);
}

TEST(Collectives, TimesMonotoneInBytesAndWorld) {
  double prev = 0.0;
  for (double bytes : {1e3, 1e5, 1e7, 1e9}) {
    const double t = ring_allreduce_time(kLink, bytes, 8);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_GT(ring_allreduce_time(kLink, 1e8, 16),
            ring_allreduce_time(kLink, 1e8, 4));
}

// Payload stamped with its micro id so delivery mix-ups are detectable.
Matrix stamped(int micro) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c)
      m(r, c) = micro * 100.0 + static_cast<double>(r * m.cols() + c);
  return m;
}

TEST(StageChannelConcurrent, MicroKeyedDeliveryWithInterleavedSenders) {
  StageChannel ch("test");
  constexpr int kProducers = 4;
  constexpr int kMicrosEach = 16;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ch, p] {
      // Producer p owns micros {p, p + kProducers, ...} — disjoint keys,
      // fully interleaved wall-clock order.
      for (int i = 0; i < kMicrosEach; ++i) {
        const int micro = p + i * kProducers;
        ch.send(micro, stamped(micro));
      }
    });
  // Consume concurrently: recv() blocks until each key shows up, in an
  // order unrelated to the senders'.
  constexpr int kTotal = kProducers * kMicrosEach;
  for (int micro = kTotal - 1; micro >= 0; --micro) {
    const Matrix m = ch.recv(micro, /*timeout_seconds=*/30.0);
    EXPECT_EQ(m(0, 0), micro * 100.0) << "payload for micro " << micro
                                      << " carries another micro's data";
    EXPECT_EQ(m(1, 2), micro * 100.0 + 5.0);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(ch.pending(), 0u);
  // The send log saw every micro exactly once, whatever the interleaving.
  std::vector<int> order = ch.send_order();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kTotal));
  std::sort(order.begin(), order.end());
  for (int m = 0; m < kTotal; ++m) EXPECT_EQ(order[static_cast<std::size_t>(m)], m);
}

TEST(StageChannelConcurrent, SendOrderLogMatchesEnforcedTotalOrder) {
  // When the senders' wall-clock order IS deterministic (each thread spins
  // for its turn), the log must reproduce it exactly — the log is the
  // realized handover order, not an approximation.
  StageChannel ch("test");
  constexpr int kTotal = 64;
  std::atomic<int> turn{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&ch, &turn, p] {
      for (int micro = p; micro < kTotal; micro += 4) {
        while (turn.load(std::memory_order_acquire) != micro)
          std::this_thread::yield();
        ch.send(micro, stamped(micro));
        turn.store(micro + 1, std::memory_order_release);
      }
    });
  for (auto& t : producers) t.join();
  const std::vector<int> order = ch.send_order();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTotal));
  for (int m = 0; m < kTotal; ++m)
    EXPECT_EQ(order[static_cast<std::size_t>(m)], m)
        << "send log diverged from the enforced send order at position " << m;
  for (int m = 0; m < kTotal; ++m) (void)ch.take(m);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(StageChannelConcurrent, RacingDuplicateSendsExactlyOneWins) {
  // Two producers racing the same key: exactly one send lands, the other
  // throws — concurrently, not just sequentially.
  for (int round = 0; round < 8; ++round) {
    StageChannel ch("test");
    std::atomic<int> errors{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p)
      producers.emplace_back([&ch, &errors] {
        try {
          ch.send(7, stamped(7));
        } catch (const Error&) {
          errors.fetch_add(1);
        }
      });
    for (auto& t : producers) t.join();
    EXPECT_EQ(errors.load(), 1);
    EXPECT_EQ(ch.send_order().size(), 1u);
    (void)ch.take(7);
  }
}

TEST(StageChannelConcurrent, ClearResetsBoxAndLogUnderTraffic) {
  StageChannel ch("test");
  for (int m = 0; m < 8; ++m) ch.send(m, stamped(m));
  ch.clear();
  EXPECT_EQ(ch.pending(), 0u);
  EXPECT_TRUE(ch.send_order().empty());
  // Keys are reusable after clear (step-entry reset semantics).
  ch.send(3, stamped(3));
  EXPECT_EQ(ch.recv(3)(0, 0), 300.0);
}

}  // namespace
}  // namespace pf
