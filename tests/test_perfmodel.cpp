// Tests for src/perfmodel: the §3.3 closed-form model, its agreement with
// the discrete-event simulator, and the qualitative claims of Figures 5/6.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.h"
#include "src/core/pipefisher.h"
#include "src/perfmodel/perf_model.h"
#include "src/perfmodel/throughput.h"
#include "src/pipeline/schedule_registry.h"

namespace pf {
namespace {

PerfModelInput base_input() {
  PerfModelInput in;
  in.cfg = bert_base();
  in.hw = p100();
  in.schedule = "chimera";
  in.depth = 8;
  in.n_micro = 8;
  in.b_micro = 32;
  return in;
}

TEST(PerfModel, RunsForEveryRegisteredScheduleAndRejectsUnknown) {
  for (const auto& name : list_schedules()) {
    auto in = base_input();
    in.schedule = name;
    if (!traits_of(name).flush) {
      // Flushless schedules have no per-step bubble: the closed form must
      // refuse rather than misreport.
      EXPECT_THROW(run_perf_model(in), Error) << name;
      continue;
    }
    const auto r = run_perf_model(in);
    EXPECT_GT(r.t_pipe, 0.0) << name;
    EXPECT_GT(r.t_bubble, 0.0) << name;
  }
  auto in = base_input();
  in.schedule = "gpipe2";
  EXPECT_THROW(run_perf_model(in), Error);
  // Schedule constraints gate the closed form too: no Chimera numbers for
  // shapes Chimera cannot take.
  in = base_input();
  in.n_micro = 7;
  EXPECT_THROW(run_perf_model(in), Error);
  // Degenerate bubble: Chimera at D=2 has t_bubble = 0, so the closed-form
  // ratio is undefined and must be rejected rather than returned as inf.
  in = base_input();
  in.depth = 2;
  in.n_micro = 2;
  EXPECT_THROW(run_perf_model(in), Error);
}

TEST(PerfModel, Table1CriticalPathCoefficients) {
  auto in = base_input();
  const auto r = run_perf_model(in);
  // Chimera, N = D: T_pipe = D·T_f + (2D-2)·T_b.
  EXPECT_NEAR(r.t_pipe, 8 * r.t_forward + 14 * r.t_backward, 1e-12);
  in.schedule = "1f1b";
  const auto g = run_perf_model(in);
  EXPECT_NEAR(g.t_pipe, 15 * (g.t_forward + g.t_backward), 1e-12);
  // Interleaved 1F1B, V chunks: T_pipe = (V·N + D - 1)·(T_f + T_b) in
  // per-chunk op times — a first-class traits citizen, no longer the
  // conservative flush upper bound.
  in.schedule = "interleaved-1f1b";
  in.virtual_chunks = 2;
  const auto i2 = run_perf_model(in);
  EXPECT_NEAR(i2.t_pipe, 23 * (i2.t_forward + i2.t_backward), 1e-12);
  EXPECT_NEAR(i2.t_bubble, 7 * (i2.t_forward + i2.t_backward), 1e-12);
}

TEST(PerfModel, BubbleIsPipeMinusUsefulWork) {
  const auto r = run_perf_model(base_input());
  EXPECT_NEAR(r.t_bubble, r.t_pipe - 8.0 * (r.t_forward + r.t_backward),
              1e-12);
  EXPECT_GT(r.t_bubble, 0.0);
}

TEST(PerfModel, MatchesDiscreteEventSimulatorOnPipeTime) {
  // The closed form and the simulator must agree on T_pipe for both
  // families (N = D, no P2P).
  for (const char* sched : {"gpipe", "1f1b", "chimera"}) {
    PipeFisherConfig cfg;
    cfg.schedule = sched;
    cfg.arch = bert_base();
    cfg.hw = p100();
    cfg.n_stages = 8;
    cfg.blocks_per_stage = 1;
    cfg.n_micro = 8;
    cfg.b_micro = 16;
    cfg.model_p2p = false;
    const auto spec = build_schedule(cfg);
    const auto step = simulate_step(spec, derive_step_costs(cfg, false));

    PerfModelInput in;
    in.cfg = cfg.arch;
    in.hw = cfg.hw;
    in.schedule = sched;
    in.depth = 8;
    in.n_micro = 8;
    in.b_micro = 16;
    const auto r = run_perf_model(in);
    if (std::string(sched) != "chimera") {
      EXPECT_NEAR(step.pipe_makespan, r.t_pipe, 1e-9) << sched;
    } else {
      // Chimera's C_f = D / C_b = 2D-2 closed form assumes T_b = 2·T_f
      // exactly; the analytic costs give T_b/T_f ≈ 1.95, so allow 2%.
      EXPECT_NEAR(step.pipe_makespan, r.t_pipe, 0.02 * r.t_pipe) << sched;
    }
  }
}

TEST(PerfModel, ChimeraBubbleInvariantInWaves) {
  // For N = k·D Chimera's bubble stays (D-2)·T_b — more micro-batches do
  // not shrink the startup/teardown bubble, they amortize it.
  auto in = base_input();
  const auto r1 = run_perf_model(in);
  in.n_micro = 16;
  const auto r2 = run_perf_model(in);
  in.n_micro = 24;
  const auto r3 = run_perf_model(in);
  EXPECT_NEAR(r1.t_bubble, r2.t_bubble, 1e-12);
  EXPECT_NEAR(r2.t_bubble, r3.t_bubble, 1e-12);
}

TEST(PerfModel, RatioDecreasesWithDepth) {
  // Paper: "as the pipeline depth D increases, the ratio goes down because
  // the bubble increases."
  auto in = base_input();
  in.depth = 4;
  in.n_micro = 4;
  const auto d4 = run_perf_model(in);
  in.depth = 16;
  in.n_micro = 16;
  const auto d16 = run_perf_model(in);
  EXPECT_LT(d16.curv_inv_bubble_ratio, d4.curv_inv_bubble_ratio);
}

TEST(PerfModel, RatioDecreasesWithMicroBatchSize) {
  // "As B_micro increases, the ratio becomes smaller because the inversion
  // work is relatively small."
  auto in = base_input();
  in.b_micro = 2;
  const auto small = run_perf_model(in);
  in.b_micro = 64;
  const auto big = run_perf_model(in);
  EXPECT_LT(big.curv_inv_bubble_ratio, small.curv_inv_bubble_ratio);
}

TEST(PerfModel, RatioIncreasesWithMoreMicroBatches) {
  // "As N_micro increases, the ratio increases because the bubbles become
  // (relatively) smaller" — more curvature work, same bubble.
  auto in = base_input();
  const auto n1 = run_perf_model(in);
  in.n_micro = 24;  // 3D
  const auto n3 = run_perf_model(in);
  EXPECT_GT(n3.curv_inv_bubble_ratio, n1.curv_inv_bubble_ratio);
}

TEST(PerfModel, LongerSequencesLowerTheRatio) {
  // "Transformers with longer sequence lengths have larger bubbles and
  // smaller ratios" (inversion is independent of S).
  auto in = base_input();
  in.cfg = bert_base();  // S = 128
  const auto s128 = run_perf_model(in);
  in.cfg = t5_base();  // same dims, S = 512
  const auto s512 = run_perf_model(in);
  EXPECT_LT(s512.curv_inv_bubble_ratio, s128.curv_inv_bubble_ratio);
}

TEST(PerfModel, ThroughputOrdering) {
  // pipeline ≥ PipeFisher ≥ K-FAC+skip ≥ naive K-FAC, strictly where the
  // paper claims strictness.
  const auto r = run_perf_model(base_input());
  EXPECT_GT(r.throughput_pipeline, r.throughput_pipefisher);
  EXPECT_GE(r.throughput_pipefisher, r.throughput_kfac_skip);
  EXPECT_GE(r.throughput_kfac_skip, r.throughput_kfac_naive);
}

TEST(PerfModel, PipeFisherThroughputCloseToVanilla) {
  // "little difference in throughput between Chimera and Chimera w/
  // PipeFisher" — precondition only.
  const auto r = run_perf_model(base_input());
  EXPECT_GT(r.throughput_pipefisher / r.throughput_pipeline, 0.88);
}

TEST(PerfModel, SpeedupVsSkipInPaperRange) {
  // Paper: up to ~1.4× when N=D and B large; ~1.1× when N=3D or B small.
  auto in = base_input();
  in.b_micro = 64;
  const auto big = run_perf_model(in);
  EXPECT_GT(big.speedup_vs_kfac_skip, 1.10);
  EXPECT_LT(big.speedup_vs_kfac_skip, 1.60);
  in.n_micro = 24;
  in.b_micro = 2;
  const auto small = run_perf_model(in);
  EXPECT_LT(small.speedup_vs_kfac_skip, 1.25);
}

TEST(PerfModel, RecomputeGrowsBubbleAndCutsActivationMemory) {
  auto in = base_input();
  const auto base = run_perf_model(in);
  in.recompute = true;
  const auto r = run_perf_model(in);
  EXPECT_GT(r.t_bubble, base.t_bubble);
  EXPECT_LT(r.memory.activations, base.memory.activations);
  EXPECT_LE(r.refresh_steps, base.refresh_steps);
  EXPECT_LT(r.throughput_pipefisher, base.throughput_pipefisher);
}

TEST(PerfModel, ChimeraOutperformsGPipeThroughput) {
  // Figure 9/10: "Chimera consistently achieves higher throughput than
  // GPipe and 1F1B (smaller bubble), but refreshes curvature less often."
  auto in = base_input();
  const auto c = run_perf_model(in);
  in.schedule = "gpipe";
  const auto g = run_perf_model(in);
  EXPECT_GT(c.throughput_pipefisher, g.throughput_pipefisher);
  EXPECT_GE(c.curv_inv_bubble_ratio, g.curv_inv_bubble_ratio);
}

TEST(Sweeps, Figure5GridShapes) {
  const auto pts = sweep_depth_bmicro(bert_base(), p100(), "chimera",
                                      {4, 8, 16}, {8, 16, 32}, 1, false);
  EXPECT_EQ(pts.size(), 9u);
  for (const auto& p : pts) {
    EXPECT_GT(p.result.throughput_pipefisher, 0.0);
    EXPECT_GT(p.result.t_bubble, 0.0);
  }
}

TEST(Sweeps, Figure6CoversAllCombinations) {
  const auto pts =
      sweep_figure6(bert_base(), p100(), {4, 8}, {1, 2, 3}, {1, 4, 16});
  EXPECT_EQ(pts.size(), 2u * 3u * 3u);
}

TEST(Sweeps, RenderingContainsKeyNumbers) {
  const auto pts = sweep_depth_bmicro(bert_base(), p100(), "chimera", {4},
                                      {8}, 1, false);
  const std::string row = render_throughput_row(pts[0]);
  EXPECT_NE(row.find("bert-base"), std::string::npos);
  EXPECT_NE(row.find("p100"), std::string::npos);
  const std::string breakdown = render_time_memory_breakdown(pts[0]);
  EXPECT_NE(breakdown.find("memory:"), std::string::npos);
}

// Property sweep: ratio in the paper's 2-10 band for typical settings
// "except when B_micro is particularly small and N_micro large".
struct RatioCase {
  std::size_t d;
  std::size_t k;  // N = k·D
  std::size_t b;
};

class RatioBand : public ::testing::TestWithParam<RatioCase> {};

TEST_P(RatioBand, WithinPlausibleBand) {
  const auto p = GetParam();
  auto in = base_input();
  in.depth = p.d;
  in.n_micro = p.d * p.k;
  in.b_micro = p.b;
  const auto r = run_perf_model(in);
  EXPECT_GT(r.curv_inv_bubble_ratio, 0.3);
  EXPECT_LT(r.curv_inv_bubble_ratio, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioBand,
    ::testing::Values(RatioCase{4, 1, 8}, RatioCase{4, 2, 32},
                      RatioCase{8, 1, 16}, RatioCase{8, 3, 8},
                      RatioCase{16, 1, 32}, RatioCase{16, 2, 4},
                      RatioCase{32, 1, 64}, RatioCase{32, 3, 2}));

}  // namespace
}  // namespace pf
