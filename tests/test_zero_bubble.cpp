// Zero-bubble ZB-H1 contracts (Qi et al. 2023, on top of PipeFisher's
// runtime): the B/W split of Linear::backward is BITWISE identical to the
// fused pass; the zb-h1 schedule floats one W op per backward through the
// simulator without ever displacing the critical path; the executable
// runtime keeps the serial-Trainer bitwise contract across stages and
// worker counts; and the flushless streaming path (run_flushless) is
// bitwise invariant to workers while exposing PipeDream-style weight
// staleness through its version tags.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/strings.h"
#include "src/optim/lamb.h"
#include "src/pipeline/simulator.h"
#include "src/pipeline/zero_bubble.h"
#include "src/train/pipeline_runtime.h"

namespace pf {
namespace {

// --- Shared fixtures (mirrors tests/test_pipeline_runtime.cpp) ------------

BertConfig small_bert(std::size_t n_layers = 4) {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = n_layers;
  cfg.seq_len = 12;
  return cfg;
}

struct Corpus {
  SyntheticCorpus corpus;
  MlmBatcher batcher;
  explicit Corpus(const BertConfig& cfg)
      : corpus([&] {
          CorpusConfig cc;
          cc.vocab = cfg.vocab;
          return cc;
        }()),
        batcher(corpus, [&] {
          MlmBatcherConfig bc;
          bc.seq_len = cfg.seq_len;
          return bc;
        }()) {}
};

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<double>> params;
};

RunResult snapshot(BertModel& model, std::vector<double> losses) {
  RunResult r;
  r.losses = std::move(losses);
  for (Param* p : model.params()) {
    std::vector<double> w(p->w.data(), p->w.data() + p->w.size());
    r.params.push_back(std::move(w));
  }
  return r;
}

RunResult serial_reference(const BertConfig& cfg, int n_micro,
                           std::size_t micro_batch, std::size_t steps,
                           bool use_kfac) {
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  TrainerConfig tc;
  tc.batch_size = micro_batch;
  tc.accumulation_steps = static_cast<std::size_t>(n_micro);
  tc.total_steps = steps;
  tc.schedule = PolyWarmupSchedule(1e-2, 0, steps);
  std::unique_ptr<Optimizer> opt;
  if (use_kfac) {
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                          std::make_unique<Lamb>(), o);
  } else {
    opt = std::make_unique<Lamb>();
  }
  Trainer trainer(model, data.batcher, std::move(opt), tc);
  const auto trace = trainer.run();
  return snapshot(model, trace.loss);
}

PipelineRuntimeConfig runtime_config(const std::string& schedule, int stages,
                                     int n_micro, std::size_t micro_batch,
                                     std::size_t steps, bool use_kfac,
                                     int workers, int stage_threads) {
  PipelineRuntimeConfig pc;
  pc.schedule = schedule;
  pc.n_stages = stages;
  pc.n_micro = n_micro;
  pc.micro_batch_size = micro_batch;
  pc.total_steps = steps;
  pc.lr = PolyWarmupSchedule(1e-2, 0, steps);
  pc.workers = workers;
  pc.stage_threads = stage_threads;
  pc.use_kfac = use_kfac;
  pc.kfac.inverse_interval = 3;
  return pc;
}

RunResult pipeline_run(const BertConfig& cfg, const PipelineRuntimeConfig& pc) {
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  PipelineRuntime rt(model, data.batcher, pc);
  const auto trace = rt.run();
  return snapshot(model, trace.loss);
}

RunResult flushless_run(const BertConfig& cfg,
                        const PipelineRuntimeConfig& pc) {
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  PipelineRuntime rt(model, data.batcher, pc);
  const auto trace = rt.run_flushless();
  return snapshot(model, trace.loss);
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b,
                          const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    ASSERT_EQ(a.losses[i], b.losses[i]) << label << " loss step " << i;
  ASSERT_EQ(a.params.size(), b.params.size()) << label;
  for (std::size_t p = 0; p < a.params.size(); ++p) {
    ASSERT_EQ(a.params[p].size(), b.params[p].size()) << label;
    for (std::size_t i = 0; i < a.params[p].size(); ++i)
      ASSERT_EQ(a.params[p][i], b.params[p][i])
          << label << " param " << p << " elem " << i;
  }
}

// --- Layer-level split: backward_dx + backward_dw == backward -------------

Matrix test_input(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::randn(rows, cols, rng, 0.7);
}

void expect_grads_equal(Linear& a, Linear& b, const std::string& label) {
  for (std::size_t p = 0; p < 2; ++p) {
    Param& pa = *a.params()[p];
    Param& pb = *b.params()[p];
    ASSERT_EQ(pa.g.size(), pb.g.size()) << label;
    for (std::size_t i = 0; i < pa.g.size(); ++i)
      ASSERT_EQ(pa.g.data()[i], pb.g.data()[i])
          << label << " " << pa.name << " elem " << i;
  }
}

TEST(LinearSplitBackward, SplitEqualsFusedBitwise) {
  Rng rng_a(11), rng_b(11);
  Linear fused(6, 5, rng_a, "lin");
  Linear split(6, 5, rng_b, "lin");
  // Two micro-batches without zeroing in between: the split path must
  // reproduce the fused accumulation order exactly (dW of micro 0 folds in
  // before dW of micro 1), not just the same sum.
  for (int micro = 0; micro < 2; ++micro) {
    const Matrix x = test_input(8, 6, 100 + static_cast<std::uint64_t>(micro));
    const Matrix dy = test_input(8, 5, 200 + static_cast<std::uint64_t>(micro));
    const Matrix dx_fused = [&] {
      fused.forward(x);
      return fused.backward(dy);
    }();
    split.forward(x);
    const Matrix dx_split = split.backward_dx(dy);
    split.backward_dw();
    ASSERT_EQ(dx_fused.rows(), dx_split.rows());
    ASSERT_EQ(dx_fused.cols(), dx_split.cols());
    for (std::size_t i = 0; i < dx_fused.size(); ++i)
      ASSERT_EQ(dx_fused.data()[i], dx_split.data()[i])
          << "dx elem " << i << " micro " << micro;
    expect_grads_equal(fused, split, format("micro %d", micro));
  }
}

TEST(LinearSplitBackward, BPassSkipsTheWeightGradient) {
  Rng rng(13);
  Linear lin(4, 3, rng, "lin");
  lin.forward(test_input(5, 4, 1));
  lin.backward_dx(test_input(5, 3, 2));
  for (std::size_t i = 0; i < lin.weight().g.size(); ++i)
    ASSERT_EQ(lin.weight().g.data()[i], 0.0) << "dW elem " << i;
  // ...but the K-FAC caches are complete: the B pass captured e_l.
  EXPECT_TRUE(lin.has_kfac_caches());
  lin.backward_dw();
  double nonzero = 0.0;
  for (std::size_t i = 0; i < lin.weight().g.size(); ++i)
    nonzero += std::abs(lin.weight().g.data()[i]);
  EXPECT_GT(nonzero, 0.0);
}

TEST(LinearSplitBackward, ExternalizedCacheMatchesLiveCaches) {
  Rng rng_a(17), rng_b(17);
  Linear live(6, 5, rng_a, "lin");
  Linear stashed(6, 5, rng_b, "lin");
  const Matrix x = test_input(7, 6, 3);
  const Matrix dy = test_input(7, 5, 4);
  live.forward(x);
  live.backward_dx(dy);
  live.backward_dw();
  stashed.forward(x);
  stashed.backward_dx(dy);
  // The runtime's deferred-dW path: stash moves the caches out, the W task
  // later replays them through the Cache overload.
  Linear::Cache c = stashed.save_cache();
  EXPECT_FALSE(stashed.has_kfac_caches());
  stashed.backward_dw(c);
  expect_grads_equal(live, stashed, "cache overload");
}

// --- Schedule + simulator -------------------------------------------------

TEST(ZeroBubble, SpecFloatsWOpsOutsidePrograms) {
  const ScheduleSpec spec = make_zb_h1(4, 8);
  EXPECT_EQ(spec.name, "zb-h1");
  EXPECT_TRUE(spec.split_backward);
  int n_w = 0;
  for (const PipeOp& op : spec.all_ops())
    if (op.type == OpType::kBackwardWeight) ++n_w;
  EXPECT_EQ(n_w, 4 * 8);  // one per (stage, micro)
  for (const auto& program : spec.programs)
    for (const PipeOp& op : program)
      EXPECT_NE(op.type, OpType::kBackwardWeight)
          << "W ops float; they never appear in a static program";
}

TEST(ZeroBubble, SplitCostsSumToFusedBackward) {
  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  EXPECT_DOUBLE_EQ(costs.backward_b_cost(0) + costs.backward_w_cost(0),
                   costs.backward_cost(0));
  costs.backward_w_fraction = 0.3;
  costs.stage_cost_scale = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(costs.backward_b_cost(1) + costs.backward_w_cost(1),
                   costs.backward_cost(1));
}

TEST(ZeroBubble, SimulatorExecutesEveryWOpAndBeatsOneFOneB) {
  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  for (int d : {2, 4, 8}) {
    for (int n : {2, 4, 8, 16}) {
      ScheduleParams p;
      p.n_stages = d;
      p.n_micro = n;
      const auto zb = simulate_step(build_schedule("zb-h1", p), costs);
      const auto ofob = simulate_step(build_schedule("1f1b", p), costs);
      EXPECT_LT(zb.pipe_makespan, ofob.pipe_makespan)
          << "D=" << d << " N=" << n;
      for (int s = 0; s < d; ++s)
        for (int m = 0; m < n; ++m) {
          const PipeOp w{OpType::kBackwardWeight, 0, s, m};
          ASSERT_TRUE(zb.has_op(w)) << "D=" << d << " N=" << n << " W(" << s
                                    << "," << m << ") never executed";
          const PipeOp b{OpType::kBackward, 0, s, m};
          EXPECT_GE(zb.op_start(w), zb.op_end(b) - 1e-12)
              << "W(" << s << "," << m << ") started before its own B pass";
          if (m > 0) {
            const PipeOp wp{OpType::kBackwardWeight, 0, s, m - 1};
            EXPECT_GE(zb.op_start(w), zb.op_end(wp) - 1e-12)
                << "per-stage W chain must run ascending micros";
          }
        }
    }
  }
}

TEST(ZeroBubble, RejectsDynamicOrderCombination) {
  ScheduleParams p;
  p.n_stages = 4;
  p.n_micro = 4;
  ScheduleSpec spec = build_schedule("chimera", p);
  spec.split_backward = true;
  StepCosts costs;
  EXPECT_THROW(simulate_step(spec, costs), Error);
}

// --- The executable runtime keeps the bitwise contract --------------------

TEST(ZeroBubbleRuntime, LambBitwiseEqualsSerialAcrossStagesAndWorkers) {
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 4;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, false);
  for (const int stages : {2, 4}) {
    for (const int workers : {0, 1, 2, 4}) {
      const auto pr = pipeline_run(
          cfg, runtime_config("zb-h1", stages, n_micro, micro_batch, steps,
                              false, workers, /*stage_threads=*/1));
      expect_bitwise_equal(ref, pr,
                           format("zb-h1 D=%d workers=%d", stages, workers));
    }
  }
}

TEST(ZeroBubbleRuntime, KfacBitwiseEqualsSerialAcrossStages) {
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 5;
  const auto ref = serial_reference(cfg, n_micro, micro_batch, steps, true);
  for (const int stages : {2, 4}) {
    const auto pr = pipeline_run(
        cfg, runtime_config("zb-h1", stages, n_micro, micro_batch, steps,
                            true, /*workers=*/2, /*stage_threads=*/1));
    expect_bitwise_equal(ref, pr, format("zb-h1 kfac D=%d", stages));
  }
}

TEST(ZeroBubbleRuntime, RejectsCopyStashes) {
  const auto cfg = small_bert(2);
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  auto pc = runtime_config("zb-h1", 2, 4, 4, 1, false, 1, 1);
  pc.copy_stashes = true;  // copy mode blanks a_l; the deferred-dW stash
                           // cannot be harvested from it
  EXPECT_THROW(PipelineRuntime(model, data.batcher, pc), Error);
}

// --- Flushless streaming --------------------------------------------------

TEST(FlushlessRuntime, BitwiseInvariantToWorkers) {
  const auto cfg = small_bert(4);
  const int n_micro = 4;
  const std::size_t micro_batch = 4, steps = 4;
  const auto pc0 = runtime_config("1f1b-flushless", 4, n_micro, micro_batch,
                                  steps, false, /*workers=*/0, 1);
  const auto ref = flushless_run(cfg, pc0);
  ASSERT_EQ(ref.losses.size(), steps);
  for (const int workers : {1, 2, 4}) {
    auto pc = pc0;
    pc.workers = workers;
    expect_bitwise_equal(ref, flushless_run(cfg, pc),
                         format("flushless workers=%d", workers));
  }
}

TEST(FlushlessRuntime, VersionTagsExposeBoundedStaleness) {
  const auto cfg = small_bert(4);
  const int stages = 4, n_micro = 4;
  const std::size_t micro_batch = 4, steps = 3;
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  const auto pc = runtime_config("1f1b-flushless", stages, n_micro,
                                 micro_batch, steps, false, 2, 1);
  PipelineRuntime rt(model, data.batcher, pc);
  rt.run_flushless();
  const auto& fwd = rt.flushless_forward_versions();
  const auto& bwd = rt.flushless_backward_versions();
  const int G = n_micro * static_cast<int>(steps);
  ASSERT_EQ(fwd.size(), static_cast<std::size_t>(stages));
  ASSERT_EQ(bwd.size(), static_cast<std::size_t>(stages));
  int max_staleness = 0;
  for (int s = 0; s < stages; ++s) {
    ASSERT_EQ(fwd[s].size(), static_cast<std::size_t>(G));
    ASSERT_EQ(bwd[s].size(), static_cast<std::size_t>(G));
    for (int g = 0; g < G; ++g) {
      // A micro's backward never sees an OLDER weight version than its
      // forward, versions only grow along the stream, and no op can see
      // more updates than its own stage has closed out by then.
      EXPECT_GE(bwd[s][g], fwd[s][g]) << "s=" << s << " g=" << g;
      EXPECT_LE(bwd[s][g], g / n_micro + 1) << "s=" << s << " g=" << g;
      if (g > 0) {
        EXPECT_GE(fwd[s][g], fwd[s][g - 1]) << "s=" << s << " g=" << g;
        EXPECT_GE(bwd[s][g], bwd[s][g - 1]) << "s=" << s << " g=" << g;
      }
      max_staleness = std::max(max_staleness, bwd[s][g] - fwd[s][g]);
    }
    // The last stage runs forward and backward back to back: never stale.
    if (s == stages - 1)
      for (int g = 0; g < G; ++g) EXPECT_EQ(bwd[s][g], fwd[s][g]) << g;
  }
  // Early stages forward ahead of their inline updates (PipeDream's whole
  // point) — with D=4 and 3 steps, some micro must train on stale weights.
  EXPECT_GT(max_staleness, 0);
  // A runtime streams exactly once.
  EXPECT_THROW(rt.run_flushless(), Error);
  EXPECT_EQ(rt.steps_taken(), steps);
}

}  // namespace
}  // namespace pf
