// NnThreads: the determinism contract of the ExecContext refactor — every
// nn layer's forward/backward is bitwise identical across thread counts
// (threads ∈ {1, 2, 4}, serial vs threaded), for outputs, input gradients
// and parameter gradients, plus an end-to-end BERT step and a grad check
// run under a multi-threaded context. See src/common/exec_context.h for
// the per-layer sharding arguments these tests pin down.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/exec_context.h"
#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/bert.h"
#include "src/nn/dropout.h"
#include "src/nn/embedding.h"
#include "src/nn/grad_check.h"
#include "src/nn/layer_norm.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/transformer_block.h"
#include "src/optim/lamb.h"
#include "src/train/trainer.h"

namespace pf {
namespace {

constexpr int kThreadCounts[] = {1, 2, 4};

void expect_bitwise(const Matrix& a, const Matrix& b, const char* what,
                    int threads) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      ASSERT_EQ(a(r, c), b(r, c))
          << what << " differs at (" << r << "," << c << ") with threads="
          << threads;
}

TEST(NnThreads, LinearForwardBackwardBitwise) {
  Rng data_rng(101);
  const Matrix x = Matrix::randn(13, 24, data_rng);
  const Matrix dy = Matrix::randn(13, 40, data_rng);
  std::vector<Matrix> ref;  // y, dx, dW, db at threads=1
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t);
    Rng rng(7);
    Linear l(24, 40, rng, "l");
    const Matrix y = l.forward(x, true, ctx);
    const Matrix dx = l.backward(dy, ctx);
    if (t == 1) {
      ref = {y, dx, l.weight().g, l.bias().g};
    } else {
      expect_bitwise(y, ref[0], "Linear forward", t);
      expect_bitwise(dx, ref[1], "Linear dx", t);
      expect_bitwise(l.weight().g, ref[2], "Linear dW", t);
      expect_bitwise(l.bias().g, ref[3], "Linear db", t);
    }
  }
}

TEST(NnThreads, LayerNormForwardBackwardBitwise) {
  Rng data_rng(103);
  const Matrix x = Matrix::randn(17, 32, data_rng, 2.5);
  const Matrix dy = Matrix::randn(17, 32, data_rng);
  Matrix ref_y, ref_dx, ref_dgamma, ref_dbeta;
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t);
    LayerNorm ln(32, "ln");
    const Matrix y = ln.forward(x, true, ctx);
    const Matrix dx = ln.backward(dy, ctx);
    if (t == 1) {
      ref_y = y;
      ref_dx = dx;
      ref_dgamma = ln.params()[0]->g;
      ref_dbeta = ln.params()[1]->g;
    } else {
      expect_bitwise(y, ref_y, "LayerNorm forward", t);
      expect_bitwise(dx, ref_dx, "LayerNorm dx", t);
      expect_bitwise(ln.params()[0]->g, ref_dgamma, "LayerNorm dgamma", t);
      expect_bitwise(ln.params()[1]->g, ref_dbeta, "LayerNorm dbeta", t);
    }
  }
}

TEST(NnThreads, ActivationsBitwise) {
  Rng rng(107);
  const Matrix x = Matrix::randn(19, 21, rng, 1.5);
  const Matrix dy = Matrix::randn(19, 21, rng);
  const ExecContext serial = ExecContext::serial();
  const Matrix g1 = gelu(x, serial);
  const Matrix gb1 = gelu_backward(x, dy, serial);
  const Matrix p1 = softmax_rows(x, serial);
  const Matrix sb1 = softmax_rows_backward(p1, dy, serial);
  for (int t : {2, 4}) {
    const ExecContext ctx(t, t);
    expect_bitwise(gelu(x, ctx), g1, "gelu", t);
    expect_bitwise(gelu_backward(x, dy, ctx), gb1, "gelu_backward", t);
    expect_bitwise(softmax_rows(x, ctx), p1, "softmax_rows", t);
    expect_bitwise(softmax_rows_backward(p1, dy, ctx), sb1,
                   "softmax_rows_backward", t);
  }
}

TEST(NnThreads, AttentionForwardBackwardBitwise) {
  const std::size_t batch = 3, seq = 5, d_model = 16, heads = 4;
  Rng data_rng(109);
  const Matrix x = Matrix::randn(batch * seq, d_model, data_rng);
  const Matrix dy = Matrix::randn(batch * seq, d_model, data_rng);
  Matrix ref_y, ref_dx;
  std::vector<Matrix> ref_grads;
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t);
    Rng rng(11);
    MultiHeadSelfAttention attn(d_model, heads, rng, "attn");
    const Matrix y = attn.forward(x, batch, seq, true, ctx);
    const Matrix dx = attn.backward(dy, ctx);
    if (t == 1) {
      ref_y = y;
      ref_dx = dx;
      for (Param* p : attn.params()) ref_grads.push_back(p->g);
    } else {
      expect_bitwise(y, ref_y, "Attention forward", t);
      expect_bitwise(dx, ref_dx, "Attention dx", t);
      const auto params = attn.params();
      for (std::size_t i = 0; i < params.size(); ++i)
        expect_bitwise(params[i]->g, ref_grads[i], "Attention param grad", t);
    }
  }
}

TEST(NnThreads, EmbeddingScatterBitwise) {
  const std::size_t vocab = 23, seq = 7, batch = 4, d = 12;
  Rng data_rng(113);
  std::vector<int> ids, segs;
  for (std::size_t i = 0; i < batch * seq; ++i) {
    // Repeated ids on purpose: the scatter must keep their serial
    // accumulation order within each table row.
    ids.push_back(static_cast<int>(data_rng.uniform_int(5)));
    segs.push_back(static_cast<int>(data_rng.uniform_int(2)));
  }
  const Matrix dy = Matrix::randn(batch * seq, d, data_rng);
  Matrix ref_out;
  std::vector<Matrix> ref_grads;
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t);
    Rng rng(13);
    Embedding emb(vocab, seq, d, rng, "emb");
    const Matrix out = emb.forward(ids, segs, batch, seq, true, ctx);
    emb.backward(dy, ctx);
    emb.backward(dy, ctx);  // accumulate twice: += order must also hold
    if (t == 1) {
      ref_out = out;
      for (Param* p : emb.params()) ref_grads.push_back(p->g);
    } else {
      expect_bitwise(out, ref_out, "Embedding forward", t);
      const auto params = emb.params();
      for (std::size_t i = 0; i < params.size(); ++i)
        expect_bitwise(params[i]->g, ref_grads[i], "Embedding table grad", t);
    }
  }
}

TEST(NnThreads, DropoutSequentialPolicyMatchesSeedStream) {
  // kSequential: the mask is the seed's serial stream at every thread
  // count — outputs are bitwise identical to the serial layer.
  Rng data_rng(127);
  const Matrix x = Matrix::randn(9, 8, data_rng);
  const Matrix dy = Matrix::randn(9, 8, data_rng);
  Dropout ref_drop(0.4, 77);
  const Matrix ref_y = ref_drop.forward(x, true, ExecContext::serial());
  const Matrix ref_dx = ref_drop.backward(dy, ExecContext::serial());
  for (int t : {2, 4}) {
    const ExecContext ctx(t, t);  // default policy: kSequential
    Dropout drop(0.4, 77);
    expect_bitwise(drop.forward(x, true, ctx), ref_y, "Dropout seq y", t);
    expect_bitwise(drop.backward(dy, ctx), ref_dx, "Dropout seq dx", t);
  }
}

TEST(NnThreads, DropoutPerRowPolicyThreadNeutralAndAdvancing) {
  Rng data_rng(131);
  const Matrix x = Matrix::randn(11, 6, data_rng);
  Matrix ref_y1, ref_y2;
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t, RngPartition::kPerRow);
    Dropout drop(0.3, 99);
    const Matrix y1 = drop.forward(x, true, ctx);
    const Matrix y2 = drop.forward(x, true, ctx);
    if (t == 1) {
      ref_y1 = y1;
      ref_y2 = y2;
      // Successive draws must differ (the counter advances the stream).
      EXPECT_GT(max_abs_diff(y1, y2), 0.0);
    } else {
      expect_bitwise(y1, ref_y1, "Dropout per-row draw 1", t);
      expect_bitwise(y2, ref_y2, "Dropout per-row draw 2", t);
    }
  }
}

TEST(NnThreads, LossBitwise) {
  Rng rng(137);
  const Matrix logits = Matrix::randn(15, 11, rng, 2.0);
  std::vector<int> labels;
  for (std::size_t r = 0; r < 15; ++r)
    labels.push_back(r % 3 == 0 ? -1 : static_cast<int>(rng.uniform_int(11)));
  const auto ref = softmax_cross_entropy(logits, labels, ExecContext::serial());
  for (int t : {2, 4}) {
    const ExecContext ctx(t, t);
    const auto res = softmax_cross_entropy(logits, labels, ctx);
    EXPECT_EQ(res.loss, ref.loss) << "loss differs with threads=" << t;
    EXPECT_EQ(res.counted, ref.counted);
    expect_bitwise(res.dlogits, ref.dlogits, "loss dlogits", t);
  }
}

BertBatch synthetic_batch(const BertConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  BertBatch b;
  b.batch = 3;
  b.seq = cfg.seq_len;
  for (std::size_t i = 0; i < b.batch * b.seq; ++i) {
    b.ids.push_back(static_cast<int>(rng.uniform_int(cfg.vocab)));
    b.segments.push_back(static_cast<int>(rng.uniform_int(2)));
    b.mlm_labels.push_back(
        rng.bernoulli(0.25) ? static_cast<int>(rng.uniform_int(cfg.vocab))
                            : -1);
  }
  for (std::size_t i = 0; i < b.batch; ++i)
    b.nsp_labels.push_back(static_cast<int>(rng.uniform_int(2)));
  return b;
}

TEST(NnThreads, BertTrainStepBitwiseEndToEnd) {
  BertConfig cfg;
  cfg.vocab = 20;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.seq_len = 8;
  const auto batch = synthetic_batch(cfg, 139);
  double ref_loss = 0.0;
  std::vector<Matrix> ref_grads;
  for (int t : kThreadCounts) {
    const ExecContext ctx(t, t);
    Rng rng(17);
    BertModel model(cfg, rng);
    const auto losses = model.train_step_backward(batch, ctx);
    if (t == 1) {
      ref_loss = losses.total;
      for (Param* p : model.params()) ref_grads.push_back(p->g);
    } else {
      EXPECT_EQ(losses.total, ref_loss) << "loss differs with threads=" << t;
      const auto params = model.params();
      ASSERT_EQ(params.size(), ref_grads.size());
      for (std::size_t i = 0; i < params.size(); ++i)
        expect_bitwise(params[i]->g, ref_grads[i], params[i]->name.c_str(),
                       t);
    }
  }
}

TEST(NnThreads, TrainerRunBitwiseAcrossNnThreads) {
  // A short full training run (model + batcher + optimizer) through
  // TrainerConfig::exec: the loss trajectory must match serial exactly.
  auto run = [](int threads) {
    BertConfig cfg;
    cfg.vocab = 30;
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.seq_len = 10;
    Rng rng(3);
    BertModel model(cfg, rng);
    CorpusConfig cc;
    cc.vocab = cfg.vocab;
    SyntheticCorpus corpus(cc);
    MlmBatcherConfig bc;
    bc.seq_len = cfg.seq_len;
    MlmBatcher batcher(corpus, bc);
    TrainerConfig tc;
    tc.batch_size = 6;
    tc.total_steps = 8;
    tc.schedule = PolyWarmupSchedule(1e-2, 2, 8);
    tc.exec = ExecContext(threads, threads);
    Trainer trainer(model, batcher, std::make_unique<Lamb>(), tc);
    return trainer.run().loss;
  };
  const auto serial = run(1);
  for (int t : {2, 4}) {
    const auto par = run(t);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(par[i], serial[i]) << "step " << i << " threads=" << t;
  }
}

TEST(NnThreads, GradCheckUnderMultiThreadedContext) {
  // The analytic gradients of a threaded backward still match finite
  // differences evaluated under the same multi-threaded context.
  const ExecContext ctx(4, 2);
  Rng rng(41);
  TransformerBlock block(8, 16, 2, rng, "blk");
  const std::size_t batch = 2, seq = 3;
  const Matrix x = Matrix::randn(batch * seq, 8, rng);
  const Matrix wsum = Matrix::randn(batch * seq, 8, rng);
  auto loss = [&](const ExecContext& c) {
    const Matrix y = block.forward(x, batch, seq, false, c);
    double s = 0.0;
    for (std::size_t r = 0; r < y.rows(); ++r)
      for (std::size_t cc = 0; cc < y.cols(); ++cc) s += y(r, cc) * wsum(r, cc);
    return s;
  };
  zero_grads(block.params());
  block.forward(x, batch, seq, true, ctx);
  block.backward(wsum, ctx);
  EXPECT_LT(max_grad_check_error(block.params(), loss, ctx, 6), 1e-4);
}

}  // namespace
}  // namespace pf
