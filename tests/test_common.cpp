// Tests for src/common: checked errors, RNG, statistics, strings, thread
// pool, CPU feature detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/common/cpu_features.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"

namespace pf {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(PF_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    PF_CHECK(false) << "extra context " << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PF_CHECK"), std::string::npos);
    EXPECT_NE(what.find("extra context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.01);
  EXPECT_NEAR(st.stddev(), 1.0, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(Ema, BiasCorrectedConstantSeries) {
  Ema ema(0.9);
  for (int i = 0; i < 5; ++i) ema.add(3.0);
  EXPECT_NEAR(ema.value(), 3.0, 1e-12);
}

TEST(Smoothing, FlatSeriesUnchanged) {
  std::vector<double> y(50, 2.5);
  const auto s = smooth_moving_average(y, 5);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Smoothing, ReducesNoiseVariance) {
  Rng rng(19);
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) y.push_back(rng.normal());
  RunningStats raw, smoothed;
  for (double v : y) raw.add(v);
  for (double v : smooth_moving_average(y, 10)) smoothed.add(v);
  EXPECT_LT(smoothed.variance(), raw.variance() / 5.0);
}

TEST(Smoothing, FirstIndexAtOrBelow) {
  std::vector<double> y = {5, 4, 3, 2, 1, 0.5};
  EXPECT_EQ(first_index_at_or_below(y, 2.5), 3);
  EXPECT_EQ(first_index_at_or_below(y, 2.5, 4), 4);
  EXPECT_EQ(first_index_at_or_below(y, -1.0), -1);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(Strings, HumanTime) {
  EXPECT_EQ(human_time(0.0123), "12.3 ms");
  EXPECT_EQ(human_time(2.5), "2.50 s");
  EXPECT_EQ(human_time(180.0), "3.0 min");
}

TEST(Strings, HumanBytesAndPercent) {
  EXPECT_EQ(human_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
  EXPECT_EQ(percent(0.417), "41.7%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcde", 4), "abcde");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTotalAndZeroWorkersAreFine) {
  ThreadPool empty(0);
  bool ran = false;
  empty.parallel_for(0, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // With no workers the calling thread executes every chunk itself.
  std::atomic<int> sum{0};
  empty.parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, ChunksAreContiguousDisjointAndBalanced) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, covered);
    EXPECT_GE(e - b, 2u);  // 10 over 4 chunks: sizes 3,3,2,2
    EXPECT_LE(e - b, 3u);
    covered = e;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(ThreadPool, MoreChunksThanWorkersStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ExceptionInChunkPropagatesAfterAllChunksFinish) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(8, 4,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw Error("chunk failure");
                          ++completed;
                        }),
      Error);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPool, SubmitRunsTask) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(1);
    pool.submit([&] { ran = true; });
    // Destructor drains the queue before joining.
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(7, 3, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 7);
  EXPECT_GE(ThreadPool::global().n_threads(), 1u);
}

TEST(CpuFeatures, LevelsAreOrderedAndNamed) {
  const SimdLevel detected = detected_simd_level();
  const SimdLevel active = active_simd_level();
  // Active can never exceed what the host/build supports.
  EXPECT_LE(static_cast<int>(active), static_cast<int>(detected));
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
}

TEST(CpuFeatures, SetLevelClampsToDetectedAndRoundTrips) {
  const SimdLevel prev = active_simd_level();
  // Scalar is always available.
  EXPECT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  // Requesting AVX2 yields AVX2 exactly when detected, scalar otherwise.
  EXPECT_EQ(set_simd_level(SimdLevel::kAvx2), detected_simd_level());
  set_simd_level(prev);
  EXPECT_EQ(active_simd_level(), prev);
}

}  // namespace
}  // namespace pf
