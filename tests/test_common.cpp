// Tests for src/common: checked errors, RNG, statistics, strings, thread
// pool, CPU feature detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/common/cpu_features.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"

namespace pf {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(PF_CHECK(1 + 1 == 2));
}

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    PF_CHECK(false) << "extra context " << 42;
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("PF_CHECK"), std::string::npos);
    EXPECT_NE(what.find("extra context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 200000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.01);
  EXPECT_NEAR(st.stddev(), 1.0, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1] / 100000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 100000.0, 0.6, 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
}

TEST(Ema, BiasCorrectedConstantSeries) {
  Ema ema(0.9);
  for (int i = 0; i < 5; ++i) ema.add(3.0);
  EXPECT_NEAR(ema.value(), 3.0, 1e-12);
}

TEST(Smoothing, FlatSeriesUnchanged) {
  std::vector<double> y(50, 2.5);
  const auto s = smooth_moving_average(y, 5);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(Smoothing, ReducesNoiseVariance) {
  Rng rng(19);
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) y.push_back(rng.normal());
  RunningStats raw, smoothed;
  for (double v : y) raw.add(v);
  for (double v : smooth_moving_average(y, 10)) smoothed.add(v);
  EXPECT_LT(smoothed.variance(), raw.variance() / 5.0);
}

TEST(Smoothing, FirstIndexAtOrBelow) {
  std::vector<double> y = {5, 4, 3, 2, 1, 0.5};
  EXPECT_EQ(first_index_at_or_below(y, 2.5), 3);
  EXPECT_EQ(first_index_at_or_below(y, 2.5, 4), 4);
  EXPECT_EQ(first_index_at_or_below(y, -1.0), -1);
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(Strings, HumanTime) {
  EXPECT_EQ(human_time(0.0123), "12.3 ms");
  EXPECT_EQ(human_time(2.5), "2.50 s");
  EXPECT_EQ(human_time(180.0), "3.0 min");
}

TEST(Strings, HumanBytesAndPercent) {
  EXPECT_EQ(human_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
  EXPECT_EQ(percent(0.417), "41.7%");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("abcde", 4), "abcde");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTotalAndZeroWorkersAreFine) {
  ThreadPool empty(0);
  bool ran = false;
  empty.parallel_for(0, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // With no workers the calling thread executes every chunk itself.
  std::atomic<int> sum{0};
  empty.parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, ChunksAreContiguousDisjointAndBalanced) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 4u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t covered = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, covered);
    EXPECT_GE(e - b, 2u);  // 10 over 4 chunks: sizes 3,3,2,2
    EXPECT_LE(e - b, 3u);
    covered = e;
  }
  EXPECT_EQ(covered, 10u);
}

TEST(ThreadPool, MoreChunksThanWorkersStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(100, 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ExceptionInChunkPropagatesAfterAllChunksFinish) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(8, 4,
                        [&](std::size_t b, std::size_t) {
                          if (b == 0) throw Error("chunk failure");
                          ++completed;
                        }),
      Error);
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPool, SubmitRunsTask) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(1);
    pool.submit([&] { ran = true; });
    // Destructor drains the queue before joining.
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> sum{0};
  ThreadPool::global().parallel_for(7, 3, [&](std::size_t b, std::size_t e) {
    sum += static_cast<int>(e - b);
  });
  EXPECT_EQ(sum.load(), 7);
  EXPECT_GE(ThreadPool::global().n_threads(), 1u);
}

TEST(CpuFeatures, LevelsAreOrderedAndNamed) {
  const SimdLevel detected = detected_simd_level();
  const SimdLevel active = active_simd_level();
  // Active can never exceed what the host/build supports.
  EXPECT_LE(static_cast<int>(active), static_cast<int>(detected));
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(CpuFeatures, SetLevelClampsToDetectedAndRoundTrips) {
  const SimdLevel prev = active_simd_level();
  // Scalar is always available.
  EXPECT_EQ(set_simd_level(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  // Requests above the detected level clamp down to it; requests at or
  // below it are honored exactly.
  const SimdLevel detected = detected_simd_level();
  for (SimdLevel req : {SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    const SimdLevel want =
        static_cast<int>(req) <= static_cast<int>(detected) ? req : detected;
    EXPECT_EQ(set_simd_level(req), want) << simd_level_name(req);
  }
  set_simd_level(prev);
  EXPECT_EQ(active_simd_level(), prev);
}

TEST(Arena, RecyclesReleasedBuffersWithinWasteBound) {
  ArenaAllocator arena;
  std::vector<double> buf = arena.acquire(100);
  const double* storage = buf.data();
  arena.release(std::move(buf));
  EXPECT_EQ(arena.stats().released, 1u);
  EXPECT_EQ(arena.stats().free_bytes, 100 * sizeof(double));

  // A smaller request within the 2x bound reuses the same storage.
  std::vector<double> again = arena.acquire(60);
  EXPECT_EQ(again.data(), storage);
  EXPECT_EQ(again.size(), 60u);
  EXPECT_EQ(arena.stats().recycled, 1u);
  EXPECT_EQ(arena.stats().free_bytes, 0u);
  arena.release(std::move(again));

  // A request the parked buffer would waste >2x on allocates fresh and
  // leaves the parked buffer alone.
  std::vector<double> tiny = arena.acquire(10);
  EXPECT_EQ(tiny.size(), 10u);
  EXPECT_EQ(arena.stats().fresh, 2u);  // the first acquire + this one
  EXPECT_GT(arena.stats().free_bytes, 0u);
}

TEST(Arena, ExhaustionGrowsInsteadOfFailing) {
  // More concurrent acquires than parked buffers: the surplus allocates
  // fresh ("exhaustion growth"), nothing throws, and all buffers are
  // usable and distinct.
  ArenaAllocator arena;
  arena.release(std::vector<double>(50));
  std::vector<std::vector<double>> live;
  for (int i = 0; i < 8; ++i) live.push_back(arena.acquire(50));
  EXPECT_EQ(arena.stats().recycled, 1u);
  EXPECT_EQ(arena.stats().fresh, 7u);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].size(), 50u);
    for (std::size_t j = i + 1; j < live.size(); ++j)
      EXPECT_NE(live[i].data(), live[j].data());
  }
}

TEST(Arena, MatrixRoundTripPreservesValuesAndAlignment) {
  ArenaAllocator arena;
  Matrix m = arena.acquire_matrix(7, 9, 1.5);
  EXPECT_EQ(m.rows(), 7u);
  EXPECT_EQ(m.cols(), 9u);
  for (std::size_t r = 0; r < 7; ++r)
    for (std::size_t c = 0; c < 9; ++c) EXPECT_EQ(m(r, c), 1.5);
  // std::vector<double> storage: at least alignof(double) everywhere the
  // kernels load from (they use unaligned loads, but the base must be a
  // valid double array).
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(0)) % alignof(double),
            0u);

  Matrix src(4, 4);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c)
      src(r, c) = static_cast<double>(r * 4 + c);
  arena.release(std::move(m));
  const Matrix copy = arena_copy(&arena, src);
  EXPECT_EQ(max_abs_diff(copy, src), 0.0);

  // Null-arena helpers fall back to plain allocation with equal values.
  const Matrix plain = arena_copy(nullptr, src);
  EXPECT_EQ(max_abs_diff(plain, src), 0.0);
  arena_release(nullptr, Matrix(2, 2, 0.0));  // no-op, must not crash
}

TEST(Arena, ArenaAssignRecyclesOnlyIntoEmptyDestinations) {
  ArenaAllocator arena;
  arena.release(std::vector<double>(12));
  Matrix src(3, 4, 2.0);
  Matrix dst;  // empty: arena serves the storage
  arena_assign(&arena, dst, src);
  EXPECT_EQ(max_abs_diff(dst, src), 0.0);
  EXPECT_EQ(arena.stats().recycled, 1u);
  // Non-empty destination: plain copy-assign, arena untouched.
  Matrix dst2(3, 4, 0.0);
  arena_assign(&arena, dst2, src);
  EXPECT_EQ(max_abs_diff(dst2, src), 0.0);
  EXPECT_EQ(arena.stats().recycled, 1u);
  EXPECT_EQ(arena.stats().fresh, 0u);
}

TEST(Arena, ConcurrentBorrowAndReturnIsClean) {
  // The pipeline's pattern: many workers acquire, fill, and release
  // concurrently (K-FAC bubble tasks release from different threads than
  // the forwards that acquired). TSan must see clean handoffs, and every
  // acquire must observe its own writes only.
  ArenaAllocator arena;
  ThreadPool pool(4);
  std::atomic<int> bad{0};
  pool.parallel_for(64, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t n = 64 + (i % 7) * 16;
      std::vector<double> buf = arena.acquire(n);
      const double tag = static_cast<double>(i + 1);
      for (auto& v : buf) v = tag;
      for (const auto& v : buf)
        if (v != tag) bad.fetch_add(1);
      arena.release(std::move(buf));
    }
  });
  EXPECT_EQ(bad.load(), 0);
  const auto st = arena.stats();
  EXPECT_EQ(st.recycled + st.fresh, 64u);
  EXPECT_EQ(st.released, 64u);
  arena.clear();
  EXPECT_EQ(arena.stats().free_bytes, 0u);
  EXPECT_EQ(arena.stats().recycled + arena.stats().fresh, 0u);
}

}  // namespace
}  // namespace pf
