// The shared-memory transport stack (src/comm/): tensor wire format,
// lock-free SPSC ring, the TransportChannel that implements the
// stage-channel contract over it, transport selection, and the two
// blocking-safety fixes that ride along — parallel_for's chunk-claiming
// rewrite (ThreadPool::in_parallel_for) and RequestQueue::wait_pop's
// non-reentrancy assert. The concurrent suites here run under TSan in CI;
// the fork-based multiproc grids live in test_multiproc.cpp (forks and
// TSan do not mix).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "src/comm/tensor_wire.h"
#include "src/comm/transport_channel.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/serve/request_queue.h"
#include "src/train/pipeline_runtime.h"

namespace pf {
namespace {

Matrix pattern_matrix(std::size_t rows, std::size_t cols, double seed) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = seed + static_cast<double>(i) * 0.25;
  return m;
}

bool bitwise_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// --- Wire format ----------------------------------------------------------

TEST(TensorWire, RoundTripFuzzShapesAndPayloads) {
  Rng rng(123);
  std::vector<unsigned char> buf;
  for (int trial = 0; trial < 200; ++trial) {
    const auto rows = 1 + static_cast<std::size_t>(rng.uniform() * 17.0);
    const auto cols = 1 + static_cast<std::size_t>(rng.uniform() * 9.0);
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < m.size(); ++i)
      m.data()[i] = rng.normal() * 1e3;
    // Salt with the payloads memcmp would catch but == would not (NaN,
    // -0.0) plus denormals and infinities.
    m.data()[0] = std::numeric_limits<double>::quiet_NaN();
    if (m.size() > 1) m.data()[1] = -0.0;
    if (m.size() > 2) m.data()[2] = std::numeric_limits<double>::denorm_min();
    if (m.size() > 3) m.data()[3] = -std::numeric_limits<double>::infinity();
    const int micro = trial * 7 - 3;
    buf.assign(wire_bytes(m), 0);
    const std::size_t len = serialize_tensor(micro, m, buf.data(), buf.size());
    EXPECT_EQ(len, wire_bytes(m));
    const WireMessage msg = deserialize_tensor(buf.data(), len);
    EXPECT_EQ(msg.micro, micro);
    EXPECT_TRUE(bitwise_equal(msg.payload, m)) << "trial " << trial;
  }
}

TEST(TensorWire, SerializeChecksCapacity) {
  const Matrix m = pattern_matrix(3, 4, 1.0);
  std::vector<unsigned char> buf(wire_bytes(m) - 1, 0);
  EXPECT_THROW(serialize_tensor(0, m, buf.data(), buf.size()), Error);
}

TEST(TensorWire, DeserializeRejectsTruncationAndCorruption) {
  const Matrix m = pattern_matrix(2, 5, -2.0);
  std::vector<unsigned char> buf(wire_bytes(m), 0);
  const std::size_t len = serialize_tensor(4, m, buf.data(), buf.size());
  // Truncated header.
  EXPECT_THROW(deserialize_tensor(buf.data(), kWireHeaderBytes - 1), Error);
  // Header intact but payload short of the shape it declares.
  EXPECT_THROW(deserialize_tensor(buf.data(), len - 8), Error);
  // Bad magic.
  std::vector<unsigned char> bad(buf);
  bad[0] ^= 0xFF;
  EXPECT_THROW(deserialize_tensor(bad.data(), len), Error);
}

// --- SPSC ring ------------------------------------------------------------

TEST(ShmRing, CreateAttachAndCapacity) {
  const std::size_t slots = 3, bytes = 64;
  SharedRegion region(ShmRing::required_bytes(slots, bytes));
  ShmRing ring = ShmRing::create(region.data(), slots, bytes, "t");
  EXPECT_EQ(ring.slot_count(), slots);
  EXPECT_EQ(ring.slot_bytes(), bytes);
  EXPECT_TRUE(ring.empty());
  ShmRing view = ShmRing::attach(region.data(), "t-view");
  EXPECT_EQ(view.slot_count(), slots);
  EXPECT_EQ(view.slot_bytes(), bytes);
}

TEST(ShmRing, FillDrainAndWraparound) {
  const std::size_t slots = 3;
  SharedRegion region(ShmRing::required_bytes(slots, 16));
  ShmRing ring = ShmRing::create(region.data(), slots, 16, "wrap");
  // Several rounds so the cursors wrap past slot_count repeatedly.
  std::uint64_t next = 0;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < slots; ++i) {
      unsigned char* slot = ring.acquire_slot(1.0);
      std::memcpy(slot, &next, sizeof(next));
      ++next;
      ring.publish(sizeof(next));
    }
    EXPECT_EQ(ring.size(), slots);
    // Full: the next acquire must time out, not overwrite.
    EXPECT_THROW(ring.acquire_slot(0.05), Error);
    std::uint64_t expect = next - slots;
    for (std::size_t i = 0; i < slots; ++i) {
      std::size_t len = 0;
      const unsigned char* p = ring.peek(&len, 1.0);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(len, sizeof(std::uint64_t));
      std::uint64_t got = 0;
      std::memcpy(&got, p, sizeof(got));
      EXPECT_EQ(got, expect);
      ++expect;
      ring.pop();
    }
    EXPECT_TRUE(ring.empty());
  }
  // Empty: try_peek declines, peek times out.
  std::size_t len = 0;
  EXPECT_EQ(ring.try_peek(&len), nullptr);
  EXPECT_THROW(ring.peek(&len, 0.05), Error);
}

// Concurrent producer/consumer across the full blocking surface (ring full
// on the producer, ring empty on the consumer, futex parks both ways).
// Runs under TSan in CI — the acquire/release cursor pair must be the
// complete happens-before story for the slot bytes.
TEST(ShmRing, ConcurrentProducerConsumer) {
  const std::size_t slots = 4;
  const std::uint64_t n = 20000;
  SharedRegion region(ShmRing::required_bytes(slots, 32));
  ShmRing ring = ShmRing::create(region.data(), slots, 32, "spsc");
  std::thread producer([&] {
    ShmRing prod = ShmRing::attach(region.data(), "spsc-prod");
    for (std::uint64_t i = 0; i < n; ++i) {
      unsigned char* slot = prod.acquire_slot(30.0);
      const std::uint64_t vals[2] = {i, i * 2654435761u};
      std::memcpy(slot, vals, sizeof(vals));
      prod.publish(sizeof(vals));
    }
  });
  for (std::uint64_t i = 0; i < n; ++i) {
    std::size_t len = 0;
    const unsigned char* p = ring.peek(&len, 30.0);
    ASSERT_EQ(len, 2 * sizeof(std::uint64_t));
    std::uint64_t vals[2];
    std::memcpy(vals, p, sizeof(vals));
    ASSERT_EQ(vals[0], i);
    ASSERT_EQ(vals[1], i * 2654435761u);
    ring.pop();
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- TransportChannel -----------------------------------------------------

struct RingChannel {
  SharedRegion region;
  TransportChannel ch;
  RingChannel(std::size_t slots, std::size_t rows, std::size_t cols,
              const std::string& name)
      : region(ShmRing::required_bytes(slots, wire_bytes(rows, cols))),
        ch(name,
           ShmRing::create(region.data(), slots, wire_bytes(rows, cols),
                           name)) {}
};

TEST(TransportChannel, ReorderBoxDecouplesWireFromConsumeOrder) {
  RingChannel rc(4, 2, 3, "reorder");
  const Matrix m2 = pattern_matrix(2, 3, 20.0);
  const Matrix m0 = pattern_matrix(2, 3, 0.0);
  const Matrix m1 = pattern_matrix(1, 3, 10.0);  // shapes may vary per micro
  rc.ch.send(2, m2);
  rc.ch.send(0, m0);
  rc.ch.send(1, m1);
  EXPECT_EQ(rc.ch.pending(), 3u);
  EXPECT_TRUE(rc.ch.has(0));
  EXPECT_TRUE(bitwise_equal(rc.ch.recv(0, 1.0), m0));
  EXPECT_TRUE(bitwise_equal(rc.ch.take(1), m1));
  EXPECT_TRUE(bitwise_equal(rc.ch.recv(2, 1.0), m2));
  EXPECT_EQ(rc.ch.pending(), 0u);
  EXPECT_EQ(rc.ch.send_order(), (std::vector<int>{2, 0, 1}));
}

TEST(TransportChannel, DuplicateSendThrows) {
  RingChannel rc(4, 1, 2, "dup");
  rc.ch.send(5, pattern_matrix(1, 2, 0.0));
  EXPECT_THROW(rc.ch.send(5, pattern_matrix(1, 2, 1.0)), Error);
}

TEST(TransportChannel, TakeBeforeSendThrows) {
  RingChannel rc(2, 1, 2, "premature");
  EXPECT_THROW(rc.ch.take(0), Error);
}

TEST(TransportChannel, ClearDrainsWireAndEndpointState) {
  RingChannel rc(4, 1, 2, "clear");
  rc.ch.send(0, pattern_matrix(1, 2, 0.0));
  rc.ch.send(1, pattern_matrix(1, 2, 1.0));
  EXPECT_TRUE(rc.ch.has(0));  // pulls micro 0 into the reorder box
  rc.ch.clear();
  EXPECT_EQ(rc.ch.pending(), 0u);
  EXPECT_TRUE(rc.ch.send_order().empty());
  // The sent-set was reset too: the same micro id may be used again.
  rc.ch.send(0, pattern_matrix(1, 2, 2.0));
  EXPECT_TRUE(bitwise_equal(rc.ch.recv(0, 1.0), pattern_matrix(1, 2, 2.0)));
}

TEST(TransportChannel, ConcurrentSendRecvBitwise) {
  const int n = 200;
  RingChannel rc(4, 3, 5, "spsc-ch");
  std::thread producer([&] {
    for (int i = 0; i < n; ++i) rc.ch.send(i, pattern_matrix(3, 5, i * 1.5));
  });
  // Consume in an order the wire did not choose: two-ahead then catch up.
  for (int i = 0; i < n; i += 2) {
    const int hi = std::min(i + 1, n - 1);
    EXPECT_TRUE(
        bitwise_equal(rc.ch.recv(hi, 30.0), pattern_matrix(3, 5, hi * 1.5)));
    if (hi != i)
      EXPECT_TRUE(
          bitwise_equal(rc.ch.recv(i, 30.0), pattern_matrix(3, 5, i * 1.5)));
  }
  producer.join();
  EXPECT_EQ(rc.ch.pending(), 0u);
  // Blocked waits were recorded (the consumer ran ahead of the producer at
  // least once across 200 round-trips).
  EXPECT_GE(rc.ch.recv_wait_seconds().size(), 1u);
}

// --- recv timeout diagnostics (both backends name channel, micro, and the
// micros that DID arrive) ---------------------------------------------------

template <typename MakeChannel>
void expect_recv_timeout_names_pending(MakeChannel make) {
  auto& ch = make();
  ch.send(7, pattern_matrix(1, 2, 7.0));
  ch.send(9, pattern_matrix(1, 2, 9.0));
  try {
    ch.recv(3, 0.05);
    FAIL() << "recv(3) should have timed out";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fwd[0->1]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("recv(3)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("timed out"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pending micros: [7, 9]"), std::string::npos) << msg;
  }
}

TEST(StageChannel, RecvTimeoutNamesChannelMicroAndPendingKeys) {
  StageChannel ch("fwd[0->1]");
  expect_recv_timeout_names_pending([&]() -> StageChannel& { return ch; });
}

TEST(TransportChannel, RecvTimeoutNamesChannelMicroAndPendingKeys) {
  RingChannel rc(4, 1, 2, "fwd[0->1]");
  expect_recv_timeout_names_pending(
      [&]() -> TransportChannel& { return rc.ch; });
}

// --- Transport selection --------------------------------------------------

TEST(Transport, ResolveDefaultsEnvAndValidation) {
  EXPECT_EQ(resolve_transport("inproc"), "inproc");
  EXPECT_EQ(resolve_transport("shm"), "shm");
  EXPECT_THROW(resolve_transport("tcp"), Error);
  ASSERT_EQ(unsetenv("PF_TRANSPORT"), 0);
  EXPECT_EQ(resolve_transport(""), "inproc");
  ASSERT_EQ(setenv("PF_TRANSPORT", "shm", 1), 0);
  EXPECT_EQ(resolve_transport(""), "shm");
  ASSERT_EQ(setenv("PF_TRANSPORT", "bogus", 1), 0);
  EXPECT_THROW(resolve_transport(""), Error);
  ASSERT_EQ(unsetenv("PF_TRANSPORT"), 0);
}

TEST(Transport, ShmRejectsMultiPipelineSchedules) {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 4;
  cfg.seq_len = 12;
  Rng rng(7);
  BertModel model(cfg, rng);
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  PipelineRuntimeConfig pc;
  pc.schedule = "chimera";  // 2 pipelines -> 2 producers per boundary
  pc.n_stages = 2;
  pc.n_micro = 4;
  pc.micro_batch_size = 2;
  pc.transport = "shm";
  EXPECT_THROW(PipelineRuntime(model, batcher, pc), Error);
}

// In-process runtime over the ring transport: bitwise-identical to the
// mutex transport (the full multiproc grids live in test_multiproc.cpp).
TEST(Transport, InProcessRuntimeShmMatchesInprocBitwise) {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 4;
  cfg.seq_len = 12;
  auto run = [&](const std::string& transport) {
    Rng rng(7);
    BertModel model(cfg, rng);
    CorpusConfig cc;
    cc.vocab = cfg.vocab;
    SyntheticCorpus corpus(cc);
    MlmBatcherConfig bc;
    bc.seq_len = cfg.seq_len;
    MlmBatcher batcher(corpus, bc);
    PipelineRuntimeConfig pc;
    pc.schedule = "1f1b";
    pc.n_stages = 2;
    pc.n_micro = 4;
    pc.micro_batch_size = 2;
    pc.total_steps = 2;
    pc.lr = PolyWarmupSchedule(1e-2, 0, 2);
    pc.use_kfac = true;
    pc.kfac.inverse_interval = 3;
    pc.workers = 2;
    pc.transport = transport;
    PipelineRuntime rt(model, batcher, pc);
    const auto trace = rt.run();
    EXPECT_EQ(rt.transport(), transport);
    std::pair<std::vector<double>, std::vector<std::vector<double>>> r;
    r.first = trace.loss;
    for (Param* p : model.params())
      r.second.emplace_back(p->w.data(), p->w.data() + p->w.size());
    return r;
  };
  const auto inproc = run("inproc");
  const auto shm = run("shm");
  EXPECT_EQ(inproc.first, shm.first);
  ASSERT_EQ(inproc.second.size(), shm.second.size());
  for (std::size_t i = 0; i < inproc.second.size(); ++i)
    EXPECT_EQ(inproc.second[i], shm.second[i]) << "tensor " << i;
}

// --- parallel_for chunk-claiming (the safety story the serving engine's
// stage_threads relaxation rests on) ----------------------------------------

TEST(ThreadPoolChunks, InParallelForFlagTracksChunkExecution) {
  EXPECT_FALSE(ThreadPool::in_parallel_for());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(8, 4, [&](std::size_t, std::size_t) {
    if (ThreadPool::in_parallel_for()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 4);
  EXPECT_FALSE(ThreadPool::in_parallel_for());
}

// The load-bearing property: a parallel_for caller claims only chunks of
// ITS OWN loop. A blocking task sitting in the pool queue (the serving
// admission pump) must never be executed by a compute loop's wait.
TEST(ThreadPoolChunks, CallerNeverExecutesUnrelatedQueuedTasks) {
  // Gate outlives the pool (declared first → destroyed last): the pool's
  // destructor joins the worker while it may still be returning from
  // gate.wait().
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<bool> blocker_ran{false};
  std::atomic<bool> queued_ran{false};
  ThreadPool pool(1);
  // Occupy the single worker with a task that blocks until we say so.
  pool.submit([&blocker_ran, gate] {
    blocker_ran = true;
    gate.wait();
  });
  while (!blocker_ran) std::this_thread::yield();
  // Another blocking task waits in the queue. Under the old help-drain
  // design the parallel_for caller could pick this up and deadlock.
  pool.submit([&queued_ran, gate] {
    queued_ran = true;
    gate.wait();
  });
  std::atomic<int> chunks{0};
  pool.parallel_for(4, 4,
                    [&](std::size_t, std::size_t) { chunks.fetch_add(1); });
  EXPECT_EQ(chunks.load(), 4);          // loop completed on the caller
  EXPECT_FALSE(queued_ran.load());      // without touching the queued task
  release.set_value();
}

TEST(ThreadPoolChunks, ZeroWorkerPoolRunsEverythingOnCaller) {
  ThreadPool pool(0);
  std::vector<int> hits(10, 0);
  pool.parallel_for(10, 4, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolChunks, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8, 4,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 0)
                                     PF_CHECK(false) << "chunk failure";
                                 }),
               Error);
  // Pool still usable afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(4, 2, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

// --- RequestQueue::wait_pop non-reentrancy (satellite of the same fix) -----

TEST(RequestQueueReentrancy, WaitPopInsideParallelForChunkThrows) {
  RequestQueue q;
  InferRequest r;
  r.id = 1;
  r.ids = {1, 2, 3};
  q.push(std::move(r));
  q.close();
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(2, 2,
                                 [&](std::size_t, std::size_t) {
                                   (void)q.wait_pop(1, 1, 0.1);
                                 }),
               Error);
  // Outside a chunk the same call drains normally.
  EXPECT_EQ(q.wait_pop(4, 1, 0.1).size(), 1u);
}

}  // namespace
}  // namespace pf
