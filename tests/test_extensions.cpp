// Tests for the paper's §5 / Appendix A.2 extensions: symmetric
// eigendecomposition, Shampoo, SAM, block-diagonal K-FAC factors, the
// interleaved-1F1B schedule, Shampoo/SAM bubble work, and gradient
// accumulation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/check.h"
#include "src/core/extra_work.h"
#include "src/core/pipefisher.h"
#include "src/kfac/kfac_engine.h"
#include "src/linalg/cholesky.h"
#include "src/linalg/eig.h"
#include "src/linalg/gemm.h"
#include "src/optim/adam.h"
#include "src/optim/sam.h"
#include "src/optim/sgd.h"
#include "src/optim/shampoo.h"
#include "src/pipeline/interleaved_1f1b.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/trace/ascii_plot.h"
#include "src/train/trainer.h"

namespace pf {
namespace {

Matrix random_spd(std::size_t n, Rng& rng, double damping = 0.5) {
  const Matrix u = Matrix::randn(n, n, rng);
  Matrix spd = matmul_tn(u, u);
  spd *= 1.0 / static_cast<double>(n);
  add_diagonal(spd, damping);
  return spd;
}

TEST(Eig, ReconstructsSymmetricMatrix) {
  Rng rng(3);
  for (std::size_t n : {1u, 2u, 5u, 12u, 24u}) {
    const Matrix m = random_spd(n, rng);
    const auto eig = sym_eig(m);
    const Matrix rebuilt =
        sym_matrix_function(eig, [](double l) { return l; });
    EXPECT_LT(max_abs_diff(rebuilt, m), 1e-9) << "n=" << n;
  }
}

TEST(Eig, EigenvaluesOfKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix m = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto eig = sym_eig(m);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Eig, VectorsAreOrthonormal) {
  Rng rng(5);
  const auto eig = sym_eig(random_spd(10, rng));
  const Matrix vtv = matmul_tn(eig.vectors, eig.vectors);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(10)), 1e-9);
}

TEST(Eig, InversePthRootIsCorrect) {
  Rng rng(7);
  const Matrix m = random_spd(8, rng);
  // (m^(-1/4))⁴ ≈ (m + eps)⁻¹.
  const double eps = 1e-9;
  const Matrix root = sym_inverse_pth_root(m, 4.0, eps);
  const Matrix fourth = matmul(matmul(root, root), matmul(root, root));
  Matrix damped = m;
  add_diagonal(damped, eps);
  EXPECT_LT(max_abs_diff(matmul(fourth, damped), Matrix::identity(8)), 1e-6);
}

TEST(Shampoo, ConvergesOnQuadratic) {
  Rng rng(9);
  Param p(3, 3, "w");
  p.w = Matrix::randn(3, 3, rng);
  const Matrix target = Matrix::randn(3, 3, rng);
  Shampoo opt(1e-6, 1);
  double loss = 0.0;
  for (int i = 0; i < 200; ++i) {
    loss = 0.0;
    for (std::size_t r = 0; r < 3; ++r)
      for (std::size_t c = 0; c < 3; ++c) {
        const double d = p.w(r, c) - target(r, c);
        loss += 0.5 * d * d;
        p.g(r, c) = d;
      }
    opt.step({&p}, 0.3);
  }
  // Shampoo's accumulated statistics decay the effective step AdaGrad-style,
  // so convergence slows near the optimum; ~1% of the initial loss (≈4.5)
  // after 200 steps demonstrates correct preconditioning.
  EXPECT_LT(loss, 0.05);
}

TEST(Shampoo, StaleRootsStillMakeProgress) {
  // root_interval = 10 (K-FAC's stale-inverse analog) still converges.
  // eps/lr pick the STABLE stale regime: a stale inverse 4th root scales
  // null-space components by lr/√eps per step (here 1.0), so the
  // trajectory is robust to rounding-level differences in the degenerate
  // eigenbasis — the old eps = 1e-6 sat at ~300× per step, where any
  // legitimate ulp change in sym_eig (e.g. the rounds-ordered parallel
  // Jacobi) flipped convergence chaotically.
  Rng rng(11);
  Param p(2, 4, "w");
  p.w = Matrix::randn(2, 4, rng);
  const Matrix target = Matrix::randn(2, 4, rng);
  Shampoo opt(1e-2, 10);
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 200; ++i) {
    double loss = 0.0;
    for (std::size_t r = 0; r < 2; ++r)
      for (std::size_t c = 0; c < 4; ++c) {
        const double d = p.w(r, c) - target(r, c);
        loss += 0.5 * d * d;
        p.g(r, c) = d;
      }
    if (i == 0) first = loss;
    last = loss;
    opt.step({&p}, 0.1);
  }
  EXPECT_LT(last, first * 0.05);
}

TEST(Sam, AscendMovesByRhoAlongGradient) {
  Param p(1, 2, "w");
  p.w = Matrix::from_rows({{1.0, 2.0}});
  p.g = Matrix::from_rows({{3.0, 4.0}});  // norm 5
  Sam sam(0.5);
  sam.ascend({&p});
  EXPECT_NEAR(p.w(0, 0), 1.0 + 0.5 * 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(p.w(0, 1), 2.0 + 0.5 * 4.0 / 5.0, 1e-12);
  sam.descend({&p});
  EXPECT_DOUBLE_EQ(p.w(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.w(0, 1), 2.0);
}

TEST(Sam, ProtocolViolationsThrow) {
  Param p(1, 1, "w");
  Sam sam(0.1);
  EXPECT_THROW(sam.descend({&p}), Error);
  sam.ascend({&p});
  EXPECT_THROW(sam.ascend({&p}), Error);
}

TEST(Sam, ZeroGradientIsSafe) {
  Param p(1, 1, "w");
  p.w(0, 0) = 7.0;
  Sam sam(0.1);
  sam.ascend({&p});
  EXPECT_DOUBLE_EQ(p.w(0, 0), 7.0);
  sam.descend({&p});
}

TEST(BlockDiagonalKfac, KEqualsOneMatchesExactInverse) {
  Rng rng(13);
  Linear l(6, 4, rng, "l");
  KfacOptions exact;
  exact.pi_correction = false;
  KfacOptions blocked = exact;
  blocked.block_diag_k = 1;
  KfacEngine e1({&l}, exact), e2({&l}, blocked);
  const Matrix x = Matrix::randn(16, 6, rng);
  const Matrix dy = Matrix::randn(16, 4, rng);
  l.forward(x, true);
  l.backward(dy);
  e1.update_curvature();
  e2.update_curvature();
  e1.update_inverses();
  e2.update_inverses();
  EXPECT_LT(max_abs_diff(e1.state(0).a_inv, e2.state(0).a_inv), 1e-12);
}

TEST(BlockDiagonalKfac, BlockInverseIsExactForBlockDiagonalInput) {
  // If the true factor IS block diagonal, k-block inversion is exact.
  Rng rng(17);
  Linear l(6, 6, rng, "l");
  KfacOptions opts;
  opts.pi_correction = false;
  opts.block_diag_k = 2;
  KfacEngine engine({&l}, opts);
  // Activations whose first 3 and last 3 dims are independent by
  // construction: x = [u, 0; 0, v] pattern per half of the batch... use
  // exactly block activations.
  Matrix x(32, 6, 0.0);
  for (std::size_t r = 0; r < 32; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      x(r, c + (r % 2 ? 3 : 0)) = rng.normal();
  // A = XᵀX/N is then 2-block diagonal (cross terms are exactly zero since
  // each row touches only one half).
  const Matrix dy = Matrix::randn(32, 6, rng);
  l.forward(x, true);
  l.backward(dy);
  engine.update_curvature();
  engine.update_inverses();
  const Matrix a = engine.state(0).corrected_a(opts.ema_decay);
  Matrix damped = a;
  add_diagonal(damped, std::sqrt(opts.damping));
  EXPECT_LT(max_abs_diff(matmul(engine.state(0).a_inv, damped),
                         Matrix::identity(6)),
            1e-8);
}

TEST(BlockDiagonalKfac, FullySplitIsDiagonalPreconditioning) {
  Rng rng(19);
  Linear l(4, 4, rng, "l");
  KfacOptions opts;
  opts.pi_correction = false;
  opts.block_diag_k = 4;  // k = dim
  KfacEngine engine({&l}, opts);
  const Matrix x = Matrix::randn(8, 4, rng);
  const Matrix dy = Matrix::randn(8, 4, rng);
  l.forward(x, true);
  l.backward(dy);
  engine.update_curvature();
  engine.update_inverses();
  const Matrix& inv = engine.state(0).a_inv;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_DOUBLE_EQ(inv(i, j), 0.0);
      }
    }
  }
}

TEST(Interleaved1F1B, SpecShape) {
  const auto spec = make_interleaved_1f1b(4, 2, 8);
  EXPECT_EQ(spec.n_stages, 8);
  EXPECT_EQ(spec.n_devices, 4);
  // Device 1 owns virtual stages 1 and 5.
  const auto owned = spec.stages_of_device(1);
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0].second, 1);
  EXPECT_EQ(owned[1].second, 5);
}

TEST(Interleaved1F1B, SimulatesWithoutDeadlockAndBeatsPlain1F1B) {
  StepCosts c;
  c.t_forward = 0.5;  // per virtual chunk: half a plain stage
  c.t_backward = 1.0;
  const auto inter = simulate_step(make_interleaved_1f1b(4, 2, 8), c);
  StepCosts plain;
  plain.t_forward = 1.0;
  plain.t_backward = 2.0;
  const auto base = simulate_step(make_1f1b(4, 8), plain);
  // Same total useful work per device; interleaving shrinks the bubble.
  const double util_inter =
      inter.timeline.utilization(0.0, inter.pipe_makespan);
  const double util_base = base.timeline.utilization(0.0, base.pipe_makespan);
  EXPECT_GT(util_inter, util_base);
}

TEST(Interleaved1F1B, WorksWithPipeFisher) {
  PipeFisherConfig cfg;
  cfg.schedule = "interleaved-1f1b";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 1;
  cfg.n_micro = 8;
  cfg.b_micro = 16;
  const auto rep = run_pipefisher(cfg);
  EXPECT_GT(rep.utilization, rep.utilization_baseline);
  EXPECT_GE(rep.refresh_interval_steps, 1);
}

TEST(ExtraWork, ShampooTasksHaveEigAfterStats) {
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 1;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, false));
  const CostModel cm(cfg.hw);
  const auto tasks = make_shampoo_tasks(spec, step, cm, cfg.arch, 1, 32);
  // Per stage: 6 linears × (4 stats + 2 eigs) = 36; 4 stages = 144.
  EXPECT_EQ(tasks.size(), 144u);
  for (const auto& t : tasks) {
    if (t.kind == WorkKind::kEigendecomposition) {
      EXPECT_EQ(t.deps.size(), 4u);
      EXPECT_TRUE(t.splittable);  // §5: eig must be divisible to fit bubbles
    }
  }
  const auto res = assign_to_bubbles(step.timeline, step.step_time, tasks);
  EXPECT_GT(res.utilization_after, res.utilization_before);
}

TEST(ExtraWork, SamDoublesTheWork) {
  PipeFisherConfig cfg;
  cfg.schedule = "gpipe";
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, false));
  const CostModel cm(cfg.hw);
  const auto tasks = make_sam_tasks(spec, step, cm, cfg.arch, 3, 32);
  EXPECT_EQ(tasks.size(), 2u * 4u * 4u);  // fwd+bwd × stages × micros
  // Total SAM seconds equal the pipeline's useful work (twice the work of
  // SGD, paper §5).
  double sam_work = 0.0;
  for (std::size_t d = 0; d < 4; ++d)
    sam_work += total_task_seconds(tasks, d);
  double useful = 0.0;
  for (std::size_t d = 0; d < 4; ++d)
    useful += step.timeline.busy_time(d, 0.0, step.pipe_makespan);
  EXPECT_NEAR(sam_work / useful, 1.0, 0.05);
  const auto res = assign_to_bubbles(step.timeline, step.step_time, tasks);
  // The atomic (non-splittable) passes pack less tightly than K-FAC's
  // fine-grained factor tasks, but still lift utilization substantially.
  EXPECT_GT(res.utilization_after, 0.70);
  EXPECT_GT(res.utilization_after, res.utilization_before + 0.15);
}

TEST(Trainer, GradientAccumulationMatchesLargerBatchScale) {
  // Accumulating k sub-batches averages gradients; a single optimizer step
  // is taken. Verify the step count and that training still learns.
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.seq_len = 12;
  Rng rng(23);
  BertModel model(cfg, rng);
  CorpusConfig cc;
  cc.vocab = cfg.vocab;
  SyntheticCorpus corpus(cc);
  MlmBatcherConfig bc;
  bc.seq_len = cfg.seq_len;
  MlmBatcher batcher(corpus, bc);
  TrainerConfig tc;
  tc.batch_size = 4;
  tc.accumulation_steps = 4;
  tc.total_steps = 60;
  tc.schedule = PolyWarmupSchedule(3e-3, 5, 60);
  Trainer trainer(model, batcher, std::make_unique<Adam>(), tc);
  const auto trace = trainer.run();
  EXPECT_EQ(trace.loss.size(), 60u);
  EXPECT_LT(trace.loss.back(), trace.loss.front());
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  std::vector<double> a = {3, 2.5, 2, 1.5, 1};
  std::vector<double> b = {3, 2, 1.2, 1.0, 0.9};
  AsciiPlotOptions opt;
  opt.width = 40;
  opt.height = 8;
  opt.title = "loss";
  const std::string plot = render_ascii_plot({a, b}, {"lamb", "kfac"}, opt);
  EXPECT_NE(plot.find("loss"), std::string::npos);
  EXPECT_NE(plot.find("*=lamb"), std::string::npos);
  EXPECT_NE(plot.find("+=kfac"), std::string::npos);
  EXPECT_NE(plot.find("3.000"), std::string::npos);
}

TEST(AsciiPlot, RejectsMismatchedLabels) {
  EXPECT_THROW(render_ascii_plot({{1.0, 2.0}}, {}), Error);
}

}  // namespace
}  // namespace pf
