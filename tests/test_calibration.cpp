// Trace-calibrated cost model + schedule autotuner
// (src/perfmodel/calibration.h, src/perfmodel/autotune.h):
//   * round-trip exactness — a synthetic simulator timeline fitted and
//     replayed through predict_step() reproduces the simulated makespan
//     bit-for-bit (fused and zero-bubble-split variants);
//   * the profile artifact — JSON serialize/parse round-trip plus a
//     truncation/mutation fuzz sweep that must always throw pf::Error,
//     never crash or mis-parse;
//   * autotuner determinism — rank_candidates() is a pure function of
//     (profiles, options);
//   * K-FAC inversion accounting — executed inversion counts per device
//     match the stage-ownership model the perf model's w multiplier
//     assumes (Chimera: 1 owned pipeline-0 stage; interleaved: V chunks);
//   * an end-to-end autotune run whose executed winner lands within a
//     loose band of its calibrated prediction (the tight 10% gate lives in
//     bench/autotune_baseline with the one-retry idiom — wall-clock bands
//     in unit tests must tolerate CI noise).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/perfmodel/autotune.h"
#include "src/perfmodel/calibration.h"
#include "src/perfmodel/perf_model.h"
#include "src/pipeline/simulator.h"
#include "src/pipeline/step_plan.h"
#include "src/train/pipeline_runtime.h"

namespace pf {
namespace {

BertConfig small_bert(std::size_t n_layers = 4) {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = n_layers;
  cfg.seq_len = 12;
  return cfg;
}

struct Corpus {
  SyntheticCorpus corpus;
  MlmBatcher batcher;
  explicit Corpus(const BertConfig& cfg)
      : corpus([&] {
          CorpusConfig cc;
          cc.vocab = cfg.vocab;
          return cc;
        }()),
        batcher(corpus, [&] {
          MlmBatcherConfig bc;
          bc.seq_len = cfg.seq_len;
          return bc;
        }()) {}
};

// A fully-populated synthetic profile at 4 model stages: every bucket
// positive so any plan is predictable from it.
CalibratedCosts synthetic_profile() {
  CalibratedCosts c;
  c.n_stages = 4;
  c.n_threads = 3;
  c.residual_scale = 1.0;
  c.t_handoff = 1e-4;
  c.backward_w_fraction = 0.4;
  c.samples = 123;
  c.n_factors = {6, 6, 6, 6};
  c.t_forward = {1.0e-3, 1.5e-3, 0.75e-3, 1.25e-3};
  c.t_backward = {2.0e-3, 1.8e-3, 2.2e-3, 2.6e-3};
  c.t_backward_b = {1.2e-3, 1.1e-3, 1.3e-3, 1.6e-3};
  c.t_backward_w = {0.8e-3, 0.7e-3, 0.9e-3, 1.0e-3};
  c.t_curvature_a = {1e-4, 1.2e-4, 0.9e-4, 1.1e-4};
  c.t_curvature_b = {1e-4, 1.0e-4, 1.0e-4, 1.0e-4};
  c.t_commit = {2e-5, 2e-5, 2e-5, 2e-5};
  c.t_inversion_a = {3e-4, 3e-4, 3e-4, 3e-4};
  c.t_inversion_b = {3e-4, 3.5e-4, 2.5e-4, 3e-4};
  c.t_precondition = {5e-5, 5e-5, 5e-5, 5e-5};
  c.t_grad_final = {1e-6, 1e-6, 1e-6, 1e-6};
  c.t_optimizer = {4e-5, 4e-5, 4e-5, 4e-5};
  return c;
}

StepPlan plan_of(const ScheduleSpec& spec) {
  std::vector<std::vector<PipeOp>> order =
      spec.dynamic_order ? simulate_step(spec, StepCosts{}).realized_programs
                         : spec.programs;
  normalize_backward_order(order);
  const std::vector<std::size_t> factors(
      static_cast<std::size_t>(spec.n_stages), 0);
  return build_step_plan(spec, order, factors, false, false);
}

}  // namespace

// --- Round-trip exactness -------------------------------------------------

// Simulated timeline -> fit -> replay the exact plan: the fitted means ARE
// the simulated costs (each bucket is constant per stage), the plan shares
// the simulator's structure, and one thread per lane removes any
// concurrency cap — so the predicted makespan equals pipe_makespan to
// floating-point noise.
TEST(CalibrationRoundTrip, FusedScheduleExact) {
  ScheduleParams p;
  p.n_stages = 4;
  p.n_micro = 8;
  const ScheduleSpec spec = build_schedule("1f1b", p);

  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  costs.stage_forward_scale = {1.0, 1.5, 0.75, 1.25};
  costs.stage_backward_scale = {1.0, 0.9, 1.1, 1.3};
  const auto sim = simulate_step(spec, costs);

  CalibrationAccumulator acc(4);
  acc.ingest(sim.timeline);
  EXPECT_EQ(acc.steps_ingested(), 1u);
  const CalibratedCosts prof = acc.fit(/*n_threads=*/4);

  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(prof.t_forward[static_cast<std::size_t>(s)],
                costs.forward_cost(s), 1e-12)
        << "stage " << s;
    EXPECT_NEAR(prof.fused_backward(s), costs.backward_cost(s), 1e-12)
        << "stage " << s;
  }
  EXPECT_EQ(prof.t_handoff, 0.0);  // the simulation ran with t_p2p = 0

  const auto pred = predict_step(plan_of(spec), prof, /*n_threads=*/4);
  EXPECT_NEAR(pred.makespan, sim.pipe_makespan, 1e-9 * sim.pipe_makespan);
}

TEST(CalibrationRoundTrip, ZeroBubbleSplitExact) {
  ScheduleParams p;
  p.n_stages = 4;
  p.n_micro = 8;
  const ScheduleSpec spec = build_schedule("zb-h1", p);
  ASSERT_TRUE(spec.split_backward);

  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  costs.backward_w_fraction = 0.375;
  const auto sim = simulate_step(spec, costs);

  CalibrationAccumulator acc(4);
  acc.ingest(sim.timeline);
  const CalibratedCosts prof = acc.fit(4);

  // The split was auto-detected and the fitted fraction is the one the
  // simulation executed, not the 0.5 prior.
  EXPECT_NEAR(prof.backward_w_fraction, 0.375, 1e-12);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(prof.split_backward_b(s), costs.backward_b_cost(s), 1e-12);
    EXPECT_NEAR(prof.split_backward_w(s), costs.backward_w_cost(s), 1e-12);
    // Fused reconstruction: B + W sums back to the fused cost.
    EXPECT_NEAR(prof.fused_backward(s), costs.backward_cost(s), 1e-12);
  }

  const auto pred = predict_step(plan_of(spec), prof, 4);
  EXPECT_NEAR(pred.makespan, sim.pipe_makespan, 1e-9 * sim.pipe_makespan);
}

// A fused trace and a split trace in ONE accumulator: both readings fit.
TEST(CalibrationRoundTrip, MixedFusedAndSplitIngest) {
  ScheduleParams p;
  p.n_stages = 2;
  p.n_micro = 4;
  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  costs.backward_w_fraction = 0.25;
  CalibrationAccumulator acc(2);
  acc.ingest(simulate_step(build_schedule("1f1b", p), costs).timeline);
  acc.ingest(simulate_step(build_schedule("zb-h1", p), costs).timeline);
  const CalibratedCosts prof = acc.fit(2);
  for (int s = 0; s < 2; ++s) {
    EXPECT_NEAR(prof.t_backward[static_cast<std::size_t>(s)], 2.0, 1e-12);
    EXPECT_NEAR(prof.t_backward_b[static_cast<std::size_t>(s)], 1.5, 1e-12);
    EXPECT_NEAR(prof.t_backward_w[static_cast<std::size_t>(s)], 0.5, 1e-12);
  }
  EXPECT_NEAR(prof.backward_w_fraction, 0.25, 1e-12);
}

// --- Profile artifact (JSON) ----------------------------------------------

TEST(CalibrationProfile, JsonRoundTrip) {
  CalibratedCosts a = synthetic_profile();
  a.residual_scale = 1.2345;
  const CalibratedCosts b = CalibratedCosts::from_json(a.to_json());
  EXPECT_EQ(b.n_stages, a.n_stages);
  EXPECT_EQ(b.n_threads, a.n_threads);
  EXPECT_EQ(b.samples, a.samples);
  EXPECT_DOUBLE_EQ(b.residual_scale, a.residual_scale);
  EXPECT_DOUBLE_EQ(b.t_handoff, a.t_handoff);
  EXPECT_DOUBLE_EQ(b.backward_w_fraction, a.backward_w_fraction);
  EXPECT_EQ(b.n_factors, a.n_factors);
  EXPECT_EQ(b.t_forward, a.t_forward);
  EXPECT_EQ(b.t_backward, a.t_backward);
  EXPECT_EQ(b.t_backward_b, a.t_backward_b);
  EXPECT_EQ(b.t_backward_w, a.t_backward_w);
  EXPECT_EQ(b.t_curvature_a, a.t_curvature_a);
  EXPECT_EQ(b.t_curvature_b, a.t_curvature_b);
  EXPECT_EQ(b.t_commit, a.t_commit);
  EXPECT_EQ(b.t_inversion_a, a.t_inversion_a);
  EXPECT_EQ(b.t_inversion_b, a.t_inversion_b);
  EXPECT_EQ(b.t_precondition, a.t_precondition);
  EXPECT_EQ(b.t_grad_final, a.t_grad_final);
  EXPECT_EQ(b.t_optimizer, a.t_optimizer);
}

TEST(CalibrationProfile, JsonRejectsMalformed) {
  const std::string good = synthetic_profile().to_json();
  // Hand-picked malformations.
  const std::vector<std::string> bad = {
      "",
      "{",
      "[1, 2]",
      "{}",
      "null",
      good + "x",                // trailing garbage
      good + " {}",              // second value
      "{\"schema\": \"other-schema\"}",
      "{\"schema\": \"pf-calibrated-costs-v1\"}",  // missing fields
  };
  for (const std::string& s : bad)
    EXPECT_THROW(CalibratedCosts::from_json(s), Error) << s;

  // Truncation fuzz: every strict prefix must throw, never crash or parse.
  for (std::size_t i = 0; i < good.size(); i += 7)
    EXPECT_THROW(CalibratedCosts::from_json(good.substr(0, i)), Error)
        << "prefix length " << i;

  // Structured mutations: wrong array size, non-finite number, bad stage
  // count.
  std::string wrong_size = good;
  const std::size_t pos = wrong_size.find("\"t_forward\": [");
  ASSERT_NE(pos, std::string::npos);
  wrong_size.erase(wrong_size.find(',', pos),
                   wrong_size.find(']', pos) - wrong_size.find(',', pos));
  EXPECT_THROW(CalibratedCosts::from_json(wrong_size), Error);

  std::string inf = good;
  const std::size_t rpos = inf.find("\"residual_scale\": ");
  ASSERT_NE(rpos, std::string::npos);
  inf.replace(rpos, std::string("\"residual_scale\": 1").size(),
              "\"residual_scale\": inf");
  EXPECT_THROW(CalibratedCosts::from_json(inf), Error);
}

// --- StepCosts / perf-model plug-ins --------------------------------------

TEST(CalibrationProfile, ToStepCostsCarriesFittedShape) {
  const CalibratedCosts prof = synthetic_profile();
  const StepCosts sc = prof.to_step_costs();
  EXPECT_DOUBLE_EQ(sc.t_forward, prof.mean_forward());
  EXPECT_DOUBLE_EQ(sc.t_backward, prof.mean_backward());
  EXPECT_DOUBLE_EQ(sc.backward_w_fraction, prof.backward_w_fraction);
  EXPECT_DOUBLE_EQ(sc.t_p2p, prof.t_handoff);
  ASSERT_EQ(sc.stage_forward_scale.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(sc.t_forward * sc.stage_forward_scale[s],
                prof.t_forward[static_cast<std::size_t>(s)], 1e-15);
    EXPECT_NEAR(sc.t_backward * sc.stage_backward_scale[s],
                prof.fused_backward(s), 1e-15);
  }
}

TEST(PerfModelCalibrated, FittedCostsReplaceFlopModel) {
  const CalibratedCosts prof = synthetic_profile();
  PerfModelInput in;
  in.cfg = bert_base();
  in.hw = p100();
  in.schedule = "1f1b";
  in.depth = 4;
  in.n_micro = 8;
  in.b_micro = 8;
  in.calibrated = &prof;
  const PerfModelResult r = run_perf_model(in);
  EXPECT_DOUBLE_EQ(r.t_forward, prof.mean_forward());
  EXPECT_DOUBLE_EQ(r.t_backward, prof.mean_backward());
  // Per-stage K-FAC terms: 6 factors/stage, uniform profile -> the means
  // are the per-stage totals.
  EXPECT_NEAR(r.t_curvature,
              6.0 * (prof.t_curvature_a[0] + prof.t_curvature_b[0]) / 4.0 +
                  6.0 * (prof.t_curvature_a[1] + prof.t_curvature_b[1]) / 4.0 +
                  6.0 * (prof.t_curvature_a[2] + prof.t_curvature_b[2]) / 4.0 +
                  6.0 * (prof.t_curvature_a[3] + prof.t_curvature_b[3]) / 4.0,
              1e-15);
  EXPECT_GT(r.t_inversion, 0.0);
  EXPECT_GT(r.throughput_pipefisher, 0.0);

  // Stage-count mismatch is rejected, not silently mis-scaled.
  in.depth = 2;
  EXPECT_THROW(run_perf_model(in), Error);
}

// --- Autotuner ------------------------------------------------------------

TEST(Autotune, RankCandidatesIsDeterministic) {
  std::map<int, CalibratedCosts> profiles;
  profiles[4] = synthetic_profile();
  AutotuneOptions o;
  o.n_devices = 4;
  o.n_micro = 8;
  o.micro_batch_size = 8;
  o.use_kfac = true;
  o.inverse_interval = 3;

  const auto r1 = rank_candidates(profiles, o);
  const auto r2 = rank_candidates(profiles, o);
  ASSERT_EQ(r1.size(), r2.size());
  // Every registered schedule appears exactly once (one stage/micro point).
  EXPECT_EQ(r1.size(), list_schedules().size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].schedule, r2[i].schedule);
    EXPECT_EQ(r1[i].params.n_stages, r2[i].params.n_stages);
    EXPECT_EQ(r1[i].params.n_micro, r2[i].params.n_micro);
    EXPECT_EQ(r1[i].viable, r2[i].viable);
    // Bitwise: the ranking must be a pure function of its inputs.
    EXPECT_EQ(r1[i].predicted_makespan, r2[i].predicted_makespan);
    EXPECT_EQ(r1[i].predicted_seconds_per_sequence,
              r2[i].predicted_seconds_per_sequence);
    if (!r1[i].viable) {
      EXPECT_FALSE(r1[i].skip_reason.empty()) << r1[i].schedule;
    } else {
      EXPECT_GT(r1[i].predicted_makespan, 0.0) << r1[i].schedule;
    }
  }
  // Viable candidates are ranked fastest-first and precede skipped ones.
  ASSERT_TRUE(r1.front().viable);
  for (std::size_t i = 1; i < r1.size(); ++i) {
    if (r1[i].viable) {
      EXPECT_TRUE(r1[i - 1].viable);
      EXPECT_GE(r1[i].predicted_seconds_per_sequence,
                r1[i - 1].predicted_seconds_per_sequence);
    }
  }
  // The ceiling cases are reported, not dropped: chimera-4 exceeds the
  // runtime's 2-pipeline limit, 1f1b-flushless has no synchronous step.
  for (const auto& c : r1) {
    if (c.schedule == "chimera-4" || c.schedule == "1f1b-flushless")
      EXPECT_FALSE(c.viable) << c.schedule;
  }
}

// Executed inversion counts per device pin the perf model's w multiplier
// (see run_perf_model's inversion-accounting note): every model stage is
// inverted exactly once per refresh by the device owning its pipeline-0
// copy. Chimera devices own one such stage (1x per-stage inversion work);
// interleaved devices own V chunks (Vx).
TEST(InversionAccounting, CountsMatchStageOwnership) {
  const auto cfg = small_bert(4);
  Corpus data(cfg);
  struct Case {
    const char* schedule;
    int n_stages;  // devices
    int expected_per_device;  // kInversionA intervals
  };
  // 4 layers -> 1 block per model stage -> 6 factors per stage.
  // chimera: D=4 devices, 4 model stages, each device inverts its one
  // pipeline-0 stage: 6. interleaved: D=2 devices, V=2 -> 4 model stages,
  // each device inverts both its chunks: 12.
  for (const Case c : {Case{"chimera", 4, 6}, Case{"interleaved-1f1b", 2, 12}}) {
    Rng rng(7);
    BertModel model(cfg, rng);
    PipelineRuntimeConfig pc;
    pc.schedule = c.schedule;
    pc.n_stages = c.n_stages;
    pc.n_micro = 4;
    pc.virtual_chunks = 2;
    pc.micro_batch_size = 2;
    pc.total_steps = 1;
    pc.workers = 2;
    pc.use_kfac = true;
    pc.kfac.curvature_interval = 1;
    pc.kfac.inverse_interval = 1;
    PipelineRuntime rt(model, data.batcher, pc);
    rt.step();
    const Timeline& tl = rt.last_executed_timeline();
    for (std::size_t d = 0; d < tl.n_devices(); ++d) {
      int inversions = 0;
      for (const Interval& iv : tl.device_intervals(d))
        if (iv.kind == WorkKind::kInversionA) ++inversions;
      EXPECT_EQ(inversions, c.expected_per_device)
          << c.schedule << " device " << d;
    }
  }
}

// End-to-end: burst-calibrate, rank, execute. The winner must have been
// measured and its calibrated prediction must land within a LOOSE band of
// the executed makespan (2x here — unit tests run on noisy schedulers; the
// 10% acceptance gate is bench/autotune_baseline's, with one retry, on the
// bench shape).
TEST(Autotune, ExecutedWinnerWithinLooseBandOfPrediction) {
  const auto cfg = small_bert(2);
  Corpus data(cfg);
  AutotuneOptions o;
  o.n_devices = 2;
  o.n_micro = 4;
  o.micro_batch_size = 2;
  o.workers = 2;
  o.burst_steps = 3;
  o.measure_steps = 3;
  o.inverse_interval = 2;
  o.schedules = {"1f1b", "gpipe"};

  const AutotuneReport rep = autotune(cfg, data.batcher, o);
  ASSERT_TRUE(rep.profiles.count(2));
  EXPECT_GT(rep.profiles.at(2).samples, 0u);
  EXPECT_GT(rep.profiles.at(2).residual_scale, 0.0);

  const AutotuneCandidate& w = rep.winner();
  EXPECT_TRUE(w.viable);
  ASSERT_GT(w.executed_makespan, 0.0);
  ASSERT_GT(w.predicted_makespan, 0.0);
  const double err = std::abs(w.predicted_makespan - w.executed_makespan) /
                     w.executed_makespan;
  EXPECT_LT(err, 2.0) << "predicted " << w.predicted_makespan << " executed "
                      << w.executed_makespan;
}

}  // namespace pf
