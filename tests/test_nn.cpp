// Tests for src/nn: every hand-written backward pass is certified against
// central finite differences, plus shape/behavior checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.h"
#include "src/nn/activations.h"
#include "src/nn/attention.h"
#include "src/nn/bert.h"
#include "src/nn/grad_check.h"
#include "src/nn/layer_norm.h"
#include "src/nn/linear.h"
#include "src/nn/loss.h"
#include "src/nn/transformer_block.h"

namespace pf {
namespace {

constexpr double kGradTol = 2e-5;

// Simple scalar head so a matrix output becomes a loss: weighted sum.
double weighted_sum(const Matrix& y, const Matrix& weights) {
  double s = 0.0;
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c) s += y(r, c) * weights(r, c);
  return s;
}

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(3);
  Linear l(2, 3, rng, "l");
  l.weight().w = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  l.bias().w = Matrix::from_rows({{0.5, -0.5, 0.0}});
  const Matrix x = Matrix::from_rows({{1, 1}});
  const Matrix y = l.forward(x);
  EXPECT_DOUBLE_EQ(y(0, 0), 5.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 6.5);
  EXPECT_DOUBLE_EQ(y(0, 2), 9.0);
}

TEST(Linear, GradCheck) {
  Rng rng(5);
  Linear l(4, 3, rng, "l");
  const Matrix x = Matrix::randn(6, 4, rng);
  const Matrix wsum = Matrix::randn(6, 3, rng);
  auto loss = [&]() { return weighted_sum(l.forward(x, false), wsum); };
  zero_grads(l.params());
  l.forward(x, true);
  l.backward(wsum);
  EXPECT_LT(max_grad_check_error(l.params(), loss, 12), kGradTol);
}

TEST(Linear, InputGradientMatchesFiniteDifference) {
  Rng rng(7);
  Linear l(3, 2, rng, "l");
  Matrix x = Matrix::randn(4, 3, rng);
  const Matrix wsum = Matrix::randn(4, 2, rng);
  l.forward(x, true);
  const Matrix dx = l.backward(wsum);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      const double orig = x(r, c);
      x(r, c) = orig + eps;
      const double up = weighted_sum(l.forward(x, false), wsum);
      x(r, c) = orig - eps;
      const double down = weighted_sum(l.forward(x, false), wsum);
      x(r, c) = orig;
      EXPECT_NEAR(dx(r, c), (up - down) / (2 * eps), 1e-5);
    }
  }
}

TEST(Linear, KfacCachesCaptureActivationsAndErrors) {
  Rng rng(9);
  Linear l(3, 2, rng, "l");
  const Matrix x = Matrix::randn(5, 3, rng);
  const Matrix dy = Matrix::randn(5, 2, rng);
  l.forward(x, true);
  l.backward(dy);
  EXPECT_TRUE(l.has_kfac_caches());
  EXPECT_LT(max_abs_diff(l.cached_input(), x), 1e-15);
  EXPECT_LT(max_abs_diff(l.cached_output_grad(), dy), 1e-15);
}

TEST(LayerNorm, OutputIsNormalizedWithUnitGamma) {
  LayerNorm ln(8, "ln");
  Rng rng(11);
  const Matrix x = Matrix::randn(4, 8, rng, 3.0);
  const Matrix y = ln.forward(x);
  for (std::size_t r = 0; r < 4; ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 8; ++c) mean += y(r, c);
    mean /= 8;
    for (std::size_t c = 0; c < 8; ++c)
      var += (y(r, c) - mean) * (y(r, c) - mean);
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GradCheck) {
  LayerNorm ln(6, "ln");
  Rng rng(13);
  const Matrix x = Matrix::randn(5, 6, rng);
  const Matrix wsum = Matrix::randn(5, 6, rng);
  auto loss = [&]() { return weighted_sum(ln.forward(x, false), wsum); };
  zero_grads(ln.params());
  ln.forward(x, true);
  ln.backward(wsum);
  EXPECT_LT(max_grad_check_error(ln.params(), loss, 12), kGradTol);
}

TEST(LayerNorm, InputGradientMatchesFiniteDifference) {
  LayerNorm ln(5, "ln");
  Rng rng(17);
  Matrix x = Matrix::randn(3, 5, rng);
  const Matrix wsum = Matrix::randn(3, 5, rng);
  ln.forward(x, true);
  const Matrix dx = ln.backward(wsum);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) {
      const double orig = x(r, c);
      x(r, c) = orig + eps;
      const double up = weighted_sum(ln.forward(x, false), wsum);
      x(r, c) = orig - eps;
      const double down = weighted_sum(ln.forward(x, false), wsum);
      x(r, c) = orig;
      EXPECT_NEAR(dx(r, c), (up - down) / (2 * eps), 2e-5);
    }
}

TEST(Gelu, KnownValuesAndMonotonicityNearZero) {
  Matrix x(1, 3);
  x(0, 0) = 0.0;
  x(0, 1) = 100.0;
  x(0, 2) = -100.0;
  const Matrix y = gelu(x);
  EXPECT_NEAR(y(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y(0, 1), 100.0, 1e-6);
  EXPECT_NEAR(y(0, 2), 0.0, 1e-6);
}

TEST(Gelu, BackwardMatchesFiniteDifference) {
  Rng rng(19);
  Matrix x = Matrix::randn(4, 4, rng);
  Matrix dy(4, 4, 1.0);
  const Matrix dx = gelu_backward(x, dy);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      const double orig = x(r, c);
      x(r, c) = orig + eps;
      const double up = gelu(x)(r, c);
      x(r, c) = orig - eps;
      const double down = gelu(x)(r, c);
      x(r, c) = orig;
      EXPECT_NEAR(dx(r, c), (up - down) / (2 * eps), 1e-6);
    }
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(23);
  const Matrix p = softmax_rows(Matrix::randn(6, 9, rng, 4.0));
  for (std::size_t r = 0; r < 6; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 9; ++c) {
      EXPECT_GT(p(r, c), 0.0);
      s += p(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Matrix x(1, 2);
  x(0, 0) = 1e4;
  x(0, 1) = 1e4 - 1.0;
  const Matrix p = softmax_rows(x);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
  EXPECT_GT(p(0, 0), p(0, 1));
}

TEST(Attention, GradCheck) {
  Rng rng(29);
  MultiHeadSelfAttention attn(8, 2, rng, "attn");
  const std::size_t batch = 2, seq = 3;
  const Matrix x = Matrix::randn(batch * seq, 8, rng);
  const Matrix wsum = Matrix::randn(batch * seq, 8, rng);
  auto loss = [&]() {
    return weighted_sum(attn.forward(x, batch, seq, false), wsum);
  };
  zero_grads(attn.params());
  attn.forward(x, batch, seq, true);
  attn.backward(wsum);
  EXPECT_LT(max_grad_check_error(attn.params(), loss, 10), kGradTol);
}

TEST(Attention, SequencesDoNotLeakAcrossBatch) {
  // Changing sequence 1's input must not affect sequence 0's output.
  Rng rng(31);
  MultiHeadSelfAttention attn(8, 2, rng, "attn");
  const std::size_t batch = 2, seq = 4;
  Matrix x = Matrix::randn(batch * seq, 8, rng);
  const Matrix y1 = attn.forward(x, batch, seq, false);
  for (std::size_t s = 0; s < seq; ++s)
    for (std::size_t c = 0; c < 8; ++c) x(seq + s, c) += 1.0;
  const Matrix y2 = attn.forward(x, batch, seq, false);
  for (std::size_t s = 0; s < seq; ++s)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_DOUBLE_EQ(y1(s, c), y2(s, c));
}

TEST(Attention, RejectsIndivisibleHeadCount) {
  Rng rng(37);
  EXPECT_THROW(MultiHeadSelfAttention(10, 3, rng, "bad"), Error);
}

TEST(TransformerBlock, GradCheck) {
  Rng rng(41);
  TransformerBlock block(8, 16, 2, rng, "blk");
  const std::size_t batch = 2, seq = 3;
  const Matrix x = Matrix::randn(batch * seq, 8, rng);
  const Matrix wsum = Matrix::randn(batch * seq, 8, rng);
  auto loss = [&]() {
    return weighted_sum(block.forward(x, batch, seq, false), wsum);
  };
  zero_grads(block.params());
  block.forward(x, batch, seq, true);
  block.backward(wsum);
  // Deeper composite ⇒ larger finite-difference truncation error; 1e-4
  // still catches any real backward bug (those show up at ≥1e-2).
  EXPECT_LT(max_grad_check_error(block.params(), loss, 6), 1e-4);
}

TEST(TransformerBlock, SixKfacLinears) {
  Rng rng(43);
  TransformerBlock block(8, 16, 2, rng, "blk");
  const auto linears = block.kfac_linears();
  ASSERT_EQ(linears.size(), 6u);
  EXPECT_EQ(linears[4]->d_out(), 16u);  // W1
  EXPECT_EQ(linears[5]->d_in(), 16u);   // W2
}

TEST(Loss, CrossEntropyOfUniformLogitsIsLogC) {
  Matrix logits(4, 8, 0.0);
  std::vector<int> labels = {0, 3, 7, 2};
  const auto res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.loss, std::log(8.0), 1e-12);
  EXPECT_EQ(res.counted, 4u);
}

TEST(Loss, IgnoredLabelsContributeNothing) {
  Matrix logits(3, 4, 0.0);
  logits(1, 2) = 100.0;  // row 1 ignored anyway
  std::vector<int> labels = {1, -1, 3};
  const auto res = softmax_cross_entropy(logits, labels);
  EXPECT_EQ(res.counted, 2u);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_DOUBLE_EQ(res.dlogits(1, c), 0.0);
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(47);
  Matrix logits = Matrix::randn(5, 6, rng);
  std::vector<int> labels = {0, 2, -1, 5, 1};
  const auto res = softmax_cross_entropy(logits, labels);
  const double eps = 1e-6;
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 6; ++c) {
      const double orig = logits(r, c);
      logits(r, c) = orig + eps;
      const double up = softmax_cross_entropy(logits, labels).loss;
      logits(r, c) = orig - eps;
      const double down = softmax_cross_entropy(logits, labels).loss;
      logits(r, c) = orig;
      EXPECT_NEAR(res.dlogits(r, c), (up - down) / (2 * eps), 1e-6);
    }
}

TEST(Loss, AllLabelsIgnoredGivesZeroLoss) {
  Matrix logits(2, 3, 1.0);
  const auto res = softmax_cross_entropy(logits, {-1, -1});
  EXPECT_DOUBLE_EQ(res.loss, 0.0);
  EXPECT_EQ(res.counted, 0u);
}

BertBatch tiny_batch(const BertConfig& cfg, std::uint64_t seed) {
  Rng rng(seed);
  BertBatch b;
  b.batch = 2;
  b.seq = cfg.seq_len;
  const std::size_t n = b.batch * b.seq;
  for (std::size_t i = 0; i < n; ++i) {
    b.ids.push_back(4 + static_cast<int>(rng.uniform_int(cfg.vocab - 4)));
    b.segments.push_back(static_cast<int>(i % cfg.seq_len) <
                                 static_cast<int>(cfg.seq_len / 2)
                             ? 0
                             : 1);
    b.mlm_labels.push_back(
        rng.bernoulli(0.2)
            ? 4 + static_cast<int>(rng.uniform_int(cfg.vocab - 4))
            : -1);
  }
  b.nsp_labels = {1, 0};
  return b;
}

TEST(Bert, FullModelGradCheck) {
  BertConfig cfg;
  cfg.vocab = 12;
  cfg.d_model = 8;
  cfg.d_ff = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.seq_len = 6;
  Rng rng(53);
  BertModel model(cfg, rng);
  const auto batch = tiny_batch(cfg, 55);
  auto loss = [&]() { return model.evaluate(batch).total; };
  zero_grads(model.params());
  model.train_step_backward(batch);
  EXPECT_LT(max_grad_check_error(model.params(), loss, 4), 5e-5);
}

TEST(Bert, LossStartsNearLogVocabPlusLog2) {
  BertConfig cfg;
  Rng rng(59);
  BertModel model(cfg, rng);
  const auto batch = tiny_batch(cfg, 61);
  const auto l = model.evaluate(batch);
  EXPECT_NEAR(l.mlm, std::log(static_cast<double>(cfg.vocab)), 1.0);
  EXPECT_NEAR(l.nsp, std::log(2.0), 0.5);
  EXPECT_NEAR(l.total, l.mlm + l.nsp, 1e-12);
}

TEST(Bert, KfacLinearsExcludeHeads) {
  BertConfig cfg;
  cfg.n_layers = 3;
  Rng rng(67);
  BertModel model(cfg, rng);
  const auto linears = model.kfac_linears();
  EXPECT_EQ(linears.size(), 3u * 6u);
  for (Linear* l : linears) {
    EXPECT_NE(l->d_out(), cfg.vocab);  // MLM head excluded (paper §4)
    EXPECT_NE(l->d_out(), 2u);         // NSP head excluded
  }
}

TEST(Bert, ParamCountIsConsistent) {
  BertConfig cfg;
  Rng rng(71);
  BertModel model(cfg, rng);
  std::size_t expected = 0;
  for (Param* p : model.params()) expected += p->size();
  EXPECT_EQ(model.n_params(), expected);
  EXPECT_GT(model.n_params(), 10000u);
}

}  // namespace
}  // namespace pf
