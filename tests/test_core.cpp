// Tests for src/core — the paper's contribution: K-FAC work generation
// (§3.1 rules), the automatic bubble assigner, and the end-to-end
// PipeFisher runner including data & inversion parallelism (§3.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/check.h"
#include "src/core/bubble_assigner.h"
#include "src/core/kfac_work.h"
#include "src/core/parallel_kfac.h"
#include "src/core/pipefisher.h"
#include "src/pipeline/gpipe.h"

namespace pf {
namespace {

PipeFisherConfig fig3_config(const std::string& schedule) {
  // Paper Figure 3: BERT-Base, 4 stages × 3 layers, N=4, B=32, P100.
  PipeFisherConfig cfg;
  cfg.schedule = schedule;
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = 4;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 4;
  cfg.b_micro = 32;
  return cfg;
}

PipeFisherConfig fig4_config() {
  // Paper Figure 4: BERT-Large, 8 stages × 3 layers, N=8, B=32, Chimera.
  PipeFisherConfig cfg;
  cfg.schedule = "chimera";
  cfg.arch = bert_large();
  cfg.hw = p100();
  cfg.n_stages = 8;
  cfg.blocks_per_stage = 3;
  cfg.n_micro = 8;
  cfg.b_micro = 32;
  return cfg;
}

TEST(KfacWork, TaskCountMatchesFormula) {
  const auto cfg = fig3_config("gpipe");
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32);
  // Per stage: 3 blocks × 6 linears × (2 curvature/micro × 4 micros +
  // 2 inversions) = 18 × 10 = 180; 4 stages → 720.
  EXPECT_EQ(tasks.size(), 720u);
}

TEST(KfacWork, CurvatureAReadyAfterForwardBReadyAfterBackward) {
  const auto cfg = fig3_config("gpipe");
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32);
  for (const auto& t : tasks) {
    if (t.kind == WorkKind::kCurvatureA) {
      const PipeOp fwd{OpType::kForward, 0, t.stage, t.micro};
      EXPECT_DOUBLE_EQ(t.earliest_start, step.op_end(fwd));
    } else if (t.kind == WorkKind::kCurvatureB) {
      const PipeOp bwd{OpType::kBackward, 0, t.stage, t.micro};
      EXPECT_DOUBLE_EQ(t.earliest_start, step.op_end(bwd));
    }
  }
}

TEST(KfacWork, InversionDependsOnAllMicrobatchCurvatures) {
  const auto cfg = fig3_config("gpipe");
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32);
  for (const auto& t : tasks) {
    if (t.kind != WorkKind::kInversionA && t.kind != WorkKind::kInversionB)
      continue;
    EXPECT_EQ(t.deps.size(), 4u);  // one curvature task per micro-batch
    std::set<int> micros;
    for (auto dep : t.deps) {
      const auto& d = tasks[dep];
      EXPECT_EQ(d.kind, t.kind == WorkKind::kInversionA
                            ? WorkKind::kCurvatureA
                            : WorkKind::kCurvatureB);
      EXPECT_EQ(d.stage, t.stage);
      EXPECT_EQ(d.layer, t.layer);
      EXPECT_EQ(d.factor, t.factor);
      micros.insert(d.micro);
    }
    EXPECT_EQ(micros.size(), 4u);
  }
}

TEST(KfacWork, TasksLandOnTheOwningDevice) {
  const auto cfg = fig4_config();
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32);
  for (const auto& t : tasks) {
    bool owned = false;
    for (const auto& [pl, s] :
         spec.stages_of_device(static_cast<int>(t.device)))
      owned |= s == t.stage;
    EXPECT_TRUE(owned) << "stage " << t.stage << " on device " << t.device;
  }
}

TEST(KfacWork, InversionParallelismSplitsInversions) {
  auto cfg = fig3_config("gpipe");
  cfg.data_parallel_world = 2;
  cfg.inversion_parallel = true;
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  KfacWorkOptions w;
  w.world = 2;
  w.inversion_parallel = true;
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32, w);
  // Curvature is replicated on both replicas; inversion is not.
  std::size_t inv_replica0 = 0, inv_replica1 = 0, curv0 = 0, curv1 = 0;
  for (const auto& t : tasks) {
    const bool rep1 = t.device >= 4;
    if (t.kind == WorkKind::kInversionA || t.kind == WorkKind::kInversionB)
      (rep1 ? inv_replica1 : inv_replica0)++;
    if (t.kind == WorkKind::kCurvatureA) (rep1 ? curv1 : curv0)++;
  }
  EXPECT_EQ(curv0, curv1);
  EXPECT_EQ(inv_replica0, inv_replica1);
  // Each replica inverts half of all 4·3·6·2 = 144 factors.
  EXPECT_EQ(inv_replica0 + inv_replica1, 144u);
  // Sync-curvature tasks present.
  EXPECT_TRUE(std::any_of(tasks.begin(), tasks.end(), [](const BubbleTask& t) {
    return t.kind == WorkKind::kSyncCurvature;
  }));
}

TEST(BubbleAssigner, PlacesWorkOnlyInGaps) {
  const auto cfg = fig3_config("gpipe");
  const auto rep = run_pipefisher(cfg);
  // Timeline::add would have thrown on any overlap; additionally check the
  // filled schedule has strictly more busy time than the base.
  const double before =
      rep.baseline_step.utilization(0.0, rep.step_time_baseline);
  EXPECT_GT(rep.utilization, before);
}

TEST(BubbleAssigner, RespectsReadinessAndDependencies) {
  const auto cfg = fig3_config("gpipe");
  const auto spec = build_schedule(cfg);
  const auto step = simulate_step(spec, derive_step_costs(cfg, true));
  const CostModel cm(cfg.hw);
  const auto tasks = make_kfac_tasks(spec, step, cm, cfg.arch, 3, 32);
  const auto res = assign_to_bubbles(step.timeline, step.step_time, tasks);
  for (const auto& t : tasks) {
    EXPECT_TRUE(std::isfinite(res.task_end[t.id]));
    for (auto dep : t.deps)
      EXPECT_GE(res.task_end[t.id], res.task_end[dep] + t.duration - 1e-9);
  }
  // Find each task's first placed chunk and verify earliest_start.
  for (std::size_t d = 0; d < res.schedule.n_devices(); ++d) {
    for (const auto& iv : res.schedule.device_intervals(d)) {
      if (iv.kind != WorkKind::kCurvatureA &&
          iv.kind != WorkKind::kCurvatureB)
        continue;
      // Curvature chunks must start after the producing fwd/bwd in step 0
      // modulo full-step shifts (the work may run in a later step).
      const PipeOp op{iv.kind == WorkKind::kCurvatureA ? OpType::kForward
                                                       : OpType::kBackward,
                      0, iv.stage, iv.micro};
      EXPECT_GE(iv.start + 1e-9, step.op_end(op))
          << work_kind_name(iv.kind) << " stage " << iv.stage;
    }
  }
}

TEST(BubbleAssigner, ThrowsWhenWorkCannotFit) {
  // A single huge non-splittable task larger than any bubble.
  Timeline base(1);
  base.add({.device = 0, .start = 0.0, .end = 1.0, .kind = WorkKind::kForward});
  BubbleTask t;
  t.id = 0;
  t.device = 0;
  t.duration = 10.0;
  t.splittable = false;
  AssignOptions opts;
  opts.max_steps = 4;
  EXPECT_THROW(assign_to_bubbles(base, 2.0, {t}, opts), Error);
}

TEST(BubbleAssigner, SplittableTaskSpansMultipleBubbles) {
  // Step: busy [0,1), idle [1,2). A 2.5s splittable task needs 3 steps.
  Timeline base(1);
  base.add({.device = 0, .start = 0.0, .end = 1.0, .kind = WorkKind::kForward});
  BubbleTask t;
  t.id = 0;
  t.device = 0;
  t.kind = WorkKind::kInversionA;
  t.duration = 2.5;
  t.splittable = true;
  const auto res = assign_to_bubbles(base, 2.0, {t});
  EXPECT_EQ(res.steps_used, 3);
  EXPECT_NEAR(res.task_end[0], 4.0 + 1.5, 1e-9);
}

TEST(BubbleAssigner, UtilizationAccountsForFilledWork) {
  Timeline base(1);
  base.add({.device = 0, .start = 0.0, .end = 1.0, .kind = WorkKind::kForward});
  BubbleTask t;
  t.id = 0;
  t.device = 0;
  t.duration = 0.5;
  const auto res = assign_to_bubbles(base, 2.0, {t});
  EXPECT_NEAR(res.utilization_before, 0.5, 1e-9);
  EXPECT_NEAR(res.utilization_after, 0.75, 1e-9);
}

TEST(ParallelKfac, ReplicationPreservesPerDeviceContent) {
  Timeline base(2);
  base.add({.device = 0, .start = 0.0, .end = 1.0, .kind = WorkKind::kForward});
  base.add({.device = 1, .start = 1.0, .end = 2.0, .kind = WorkKind::kBackward});
  const Timeline rep = replicate_for_data_parallel(base, 3);
  EXPECT_EQ(rep.n_devices(), 6u);
  EXPECT_EQ(rep.device_intervals(4).size(), 1u);
  EXPECT_EQ(rep.device_intervals(4)[0].kind, WorkKind::kForward);
  EXPECT_DOUBLE_EQ(rep.device_intervals(5)[0].start, 1.0);
}

// ---- End-to-end PipeFisher: the paper's headline utilization claims ----

TEST(PipeFisher, Figure3GPipeUtilization) {
  const auto rep = run_pipefisher(fig3_config("gpipe"));
  // Paper: 41.7% → 89.0%. Our analytic substrate reproduces the shape:
  // baseline well under 65%, PipeFisher ≥ 85%.
  EXPECT_GT(rep.utilization_baseline, 0.35);
  EXPECT_LT(rep.utilization_baseline, 0.70);
  EXPECT_GT(rep.utilization, 0.80);
  EXPECT_GT(rep.utilization - rep.utilization_baseline, 0.20);
}

TEST(PipeFisher, Figure3OneFOneBUtilization) {
  const auto rep = run_pipefisher(fig3_config("1f1b"));
  EXPECT_GT(rep.utilization, 0.80);
  EXPECT_GT(rep.utilization - rep.utilization_baseline, 0.20);
}

TEST(PipeFisher, Figure4ChimeraUtilization) {
  const auto rep = run_pipefisher(fig4_config());
  // Paper: 59.8% → 97.6%.
  EXPECT_GT(rep.utilization_baseline, 0.50);
  EXPECT_GT(rep.utilization, 0.85);
}

TEST(PipeFisher, ChimeraBaselineBeatsGPipeBaseline) {
  const auto g = run_pipefisher(fig3_config("gpipe"));
  const auto c = run_pipefisher(fig3_config("chimera"));
  EXPECT_GT(c.utilization_baseline, g.utilization_baseline);
}

TEST(PipeFisher, RefreshIntervalIsAFewSteps) {
  // Paper §3.1: curvature and inversion complete within ~2 steps in the
  // Figure 3 setup, 2-4 steps in the Figure 4 setup.
  const auto g = run_pipefisher(fig3_config("gpipe"));
  EXPECT_GE(g.refresh_interval_steps, 1);
  EXPECT_LE(g.refresh_interval_steps, 4);
  const auto c = run_pipefisher(fig4_config());
  EXPECT_GE(c.refresh_interval_steps, 1);
  EXPECT_LE(c.refresh_interval_steps, 6);
}

TEST(PipeFisher, PreconditionIsTheOnlyStepOverhead) {
  // Step-time inflation ≈ precondition only (paper: ~6.5% for BERT-Large
  // Chimera; more generally < 20%).
  for (const auto& sched : {"gpipe", "1f1b", "chimera"}) {
    const auto rep = run_pipefisher(fig3_config(sched));
    EXPECT_GT(rep.overhead_fraction(), 0.0) << sched;
    EXPECT_LT(rep.overhead_fraction(), 0.20) << sched;
  }
}

TEST(PipeFisher, DataInversionParallelismKeepsUtilizationHigh) {
  // Figure 3 bottom: 8 GPUs (2 replicas), utilization 86-87% — slightly
  // below the 4-GPU case but far above baseline.
  auto cfg = fig3_config("gpipe");
  cfg.data_parallel_world = 2;
  cfg.inversion_parallel = true;
  const auto rep = run_pipefisher(cfg);
  EXPECT_EQ(rep.pipefisher_window.n_devices(), 8u);
  EXPECT_GT(rep.utilization, 0.75);
  // Splitting inversion halves the per-device inversion work, so the
  // refresh completes at least as fast as without replicas.
  const auto rep1 = run_pipefisher(fig3_config("gpipe"));
  EXPECT_LE(rep.refresh_interval_steps, rep1.refresh_interval_steps + 1);
}

TEST(PipeFisher, RecomputationIncreasesBubbleAndRefreshFrequency) {
  auto cfg = fig3_config("gpipe");
  auto base = run_pipefisher(cfg);
  cfg.recompute = true;
  auto r = run_pipefisher(cfg);
  EXPECT_GT(r.bubble_per_step, base.bubble_per_step);
  EXPECT_LE(r.refresh_interval_steps, base.refresh_interval_steps);
}

// End-to-end sweep: every schedule × several shapes must satisfy the
// library's core guarantees.
struct E2ECase {
  const char* schedule;
  int depth;
  int n_micro;
  int b_micro;
};

class EndToEndSweep : public ::testing::TestWithParam<E2ECase> {};

TEST_P(EndToEndSweep, CoreGuaranteesHold) {
  const auto p = GetParam();
  PipeFisherConfig cfg;
  cfg.schedule = p.schedule;
  cfg.arch = bert_base();
  cfg.hw = p100();
  cfg.n_stages = p.depth;
  cfg.blocks_per_stage = 1;
  cfg.n_micro = p.n_micro;
  cfg.b_micro = p.b_micro;
  const auto rep = run_pipefisher(cfg);
  // Utilization improves, stays a valid fraction.
  EXPECT_GT(rep.utilization, rep.utilization_baseline) << p.schedule;
  EXPECT_LE(rep.utilization, 1.0 + 1e-9);
  // Precondition is the only step overhead, bounded.
  EXPECT_GT(rep.step_time, rep.step_time_baseline);
  EXPECT_LT(rep.overhead_fraction(), 0.5);
  // Refresh happens within a bounded number of steps.
  EXPECT_GE(rep.refresh_interval_steps, 1);
  EXPECT_LE(rep.refresh_interval_steps, 64);
  // The emitted window really spans refresh_interval steps.
  EXPECT_NEAR(rep.pipefisher_window.makespan(),
              rep.refresh_interval_steps * rep.step_time,
              rep.step_time + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, EndToEndSweep,
    ::testing::Values(E2ECase{"gpipe", 4, 4, 8}, E2ECase{"gpipe", 8, 16, 32},
                      E2ECase{"1f1b", 4, 8, 16}, E2ECase{"1f1b", 8, 8, 8},
                      E2ECase{"chimera", 4, 4, 32},
                      E2ECase{"chimera", 8, 16, 16},
                      E2ECase{"interleaved-1f1b", 4, 8, 16},
                      E2ECase{"interleaved-1f1b", 8, 8, 8}));

TEST(PipeFisher, RejectsInvalidConfigs) {
  auto cfg = fig3_config("gpipe");
  cfg.schedule = "pipedream";
  EXPECT_THROW(run_pipefisher(cfg), Error);
  cfg = fig3_config("gpipe");
  cfg.inversion_parallel = true;  // needs world > 1
  EXPECT_THROW(run_pipefisher(cfg), Error);
}

}  // namespace
}  // namespace pf
