// Multi-process stage placement (src/train/multiproc.h): forked
// one-process-per-device training over the shm-ring transport must be
// bitwise-identical — losses AND final parameters — to both the
// in-process runtime (shm transport) and the serial Trainer, across
// schedules, stage counts, and optimizers.
//
// These tests fork(). They are deliberately NOT in test_transport.cpp:
// the TSan CI job runs that binary, and forking a TSan'd multi-threaded
// parent is undefined-behavior territory. CI runs this file in the
// regular and multi-process job legs only.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/optim/lamb.h"
#include "src/train/multiproc.h"
#include "src/train/trainer.h"

namespace pf {
namespace {

BertConfig small_bert() {
  BertConfig cfg;
  cfg.vocab = 36;
  cfg.d_model = 16;
  cfg.d_ff = 32;
  cfg.n_heads = 2;
  cfg.n_layers = 4;
  cfg.seq_len = 12;
  return cfg;
}

struct Corpus {
  SyntheticCorpus corpus;
  MlmBatcher batcher;
  explicit Corpus(const BertConfig& cfg)
      : corpus([&] {
          CorpusConfig cc;
          cc.vocab = cfg.vocab;
          return cc;
        }()),
        batcher(corpus, [&] {
          MlmBatcherConfig bc;
          bc.seq_len = cfg.seq_len;
          return bc;
        }()) {}
};

struct RunResult {
  std::vector<double> losses;
  std::vector<std::vector<double>> params;
};

constexpr int kMicros = 4;
constexpr std::size_t kMicroBatch = 2;
constexpr std::size_t kSteps = 2;

RunResult serial_reference(const BertConfig& cfg, bool use_kfac) {
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  TrainerConfig tc;
  tc.batch_size = kMicroBatch;
  tc.accumulation_steps = kMicros;
  tc.total_steps = kSteps;
  tc.schedule = PolyWarmupSchedule(1e-2, 0, kSteps);
  std::unique_ptr<Optimizer> opt;
  if (use_kfac) {
    KfacOptimizerOptions o;
    o.inverse_interval = 3;
    o.per_micro_curvature = true;
    opt = std::make_unique<KfacOptimizer>(model.kfac_linears(),
                                          std::make_unique<Lamb>(), o);
  } else {
    opt = std::make_unique<Lamb>();
  }
  Trainer trainer(model, data.batcher, std::move(opt), tc);
  RunResult r;
  r.losses = trainer.run().loss;
  for (Param* p : model.params())
    r.params.emplace_back(p->w.data(), p->w.data() + p->w.size());
  return r;
}

PipelineRuntimeConfig runtime_config(const std::string& schedule, int stages,
                                     bool use_kfac) {
  PipelineRuntimeConfig pc;
  pc.schedule = schedule;
  pc.n_stages = stages;
  pc.n_micro = kMicros;
  pc.micro_batch_size = kMicroBatch;
  pc.total_steps = kSteps;
  pc.lr = PolyWarmupSchedule(1e-2, 0, kSteps);
  pc.use_kfac = use_kfac;
  pc.kfac.inverse_interval = 3;
  return pc;
}

void expect_bitwise(const RunResult& a, const RunResult& b,
                    const std::string& label) {
  ASSERT_EQ(a.losses.size(), b.losses.size()) << label;
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    EXPECT_EQ(a.losses[i], b.losses[i]) << label << " loss step " << i;
  ASSERT_EQ(a.params.size(), b.params.size()) << label;
  for (std::size_t p = 0; p < a.params.size(); ++p)
    EXPECT_EQ(a.params[p], b.params[p]) << label << " tensor " << p;
}

// Runs the forked launcher, the in-process runtime over the shm transport,
// and the serial Trainer; demands all three agree bitwise.
void check_grid_point(const std::string& schedule, int stages, bool use_kfac) {
  SCOPED_TRACE(schedule + " stages=" + std::to_string(stages) +
               (use_kfac ? " kfac" : " lamb"));
  const BertConfig cfg = small_bert();

  // Forked run first: fork() from a parent that has not spun up pools yet.
  MultiprocConfig mcfg;
  mcfg.runtime = runtime_config(schedule, stages, use_kfac);
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  const MultiprocResult mp = run_multiproc(model, data.batcher, mcfg);
  RunResult mp_r;
  mp_r.losses = mp.trace.loss;
  mp_r.params = mp.params;

  // Launcher bookkeeping sanity.
  EXPECT_GT(mp.n_processes, 0);
  EXPECT_LE(mp.n_processes, stages);
  EXPECT_GT(mp.wall_seconds, 0.0);
  ASSERT_EQ(mp_r.losses.size(), kSteps);

  Rng rng2(7);
  BertModel model2(cfg, rng2);
  Corpus data2(cfg);
  PipelineRuntimeConfig pc = mcfg.runtime;
  pc.transport = "shm";
  PipelineRuntime rt(model2, data2.batcher, pc);
  RunResult ip_r;
  ip_r.losses = rt.run().loss;
  for (Param* p : model2.params())
    ip_r.params.emplace_back(p->w.data(), p->w.data() + p->w.size());

  expect_bitwise(mp_r, ip_r, "multiproc vs in-process");
  expect_bitwise(mp_r, serial_reference(cfg, use_kfac), "multiproc vs serial");
}

TEST(Multiproc, GpipeTwoStagesLamb) { check_grid_point("gpipe", 2, false); }
TEST(Multiproc, GpipeTwoStagesKfac) { check_grid_point("gpipe", 2, true); }
TEST(Multiproc, GpipeFourStagesLamb) { check_grid_point("gpipe", 4, false); }
TEST(Multiproc, OneFOneBTwoStagesLamb) { check_grid_point("1f1b", 2, false); }
TEST(Multiproc, OneFOneBTwoStagesKfac) { check_grid_point("1f1b", 2, true); }
TEST(Multiproc, OneFOneBFourStagesKfac) { check_grid_point("1f1b", 4, true); }
TEST(Multiproc, InterleavedTwoStagesKfac) {
  check_grid_point("interleaved-1f1b", 2, true);
}
TEST(Multiproc, ZeroBubbleTwoStagesLamb) { check_grid_point("zb-h1", 2, false); }
TEST(Multiproc, ZeroBubbleTwoStagesKfac) { check_grid_point("zb-h1", 2, true); }

TEST(Multiproc, HandoffStatsCoverEveryBoundaryDirection) {
  const BertConfig cfg = small_bert();
  MultiprocConfig mcfg;
  mcfg.runtime = runtime_config("1f1b", 2, false);
  Rng rng(7);
  BertModel model(cfg, rng);
  Corpus data(cfg);
  const MultiprocResult mp = run_multiproc(model, data.batcher, mcfg);
  // One forward and one backward ring per interior boundary.
  ASSERT_EQ(mp.handoff.size(), 2u * (2 - 1));
  for (const auto& h : mp.handoff) {
    EXPECT_FALSE(h.channel.empty());
    EXPECT_GE(h.wait_p95, h.wait_p50);
    EXPECT_GE(h.wait_p50, 0.0);
  }
}

}  // namespace
}  // namespace pf
