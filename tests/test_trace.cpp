// Tests for src/trace: timeline bookkeeping, the paper's utilization metric,
// bubble (gap) extraction, ASCII Gantt and Chrome trace export.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/trace/ascii_gantt.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/timeline.h"

namespace pf {
namespace {

Interval iv(std::size_t dev, double s, double e, WorkKind k) {
  return Interval{.device = dev, .start = s, .end = e, .kind = k};
}

TEST(Timeline, AddAndQuery) {
  Timeline tl(2);
  tl.add(iv(0, 0.0, 1.0, WorkKind::kForward));
  tl.add(iv(0, 2.0, 3.0, WorkKind::kBackward));
  tl.add(iv(1, 1.0, 2.0, WorkKind::kForward));
  EXPECT_EQ(tl.device_intervals(0).size(), 2u);
  EXPECT_DOUBLE_EQ(tl.makespan(), 3.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(), 0.0);
}

TEST(Timeline, RejectsOverlapOnSameDevice) {
  Timeline tl(1);
  tl.add(iv(0, 0.0, 2.0, WorkKind::kForward));
  EXPECT_THROW(tl.add(iv(0, 1.0, 3.0, WorkKind::kBackward)), Error);
}

TEST(Timeline, RejectsBadDeviceAndNegativeDuration) {
  Timeline tl(1);
  EXPECT_THROW(tl.add(iv(3, 0.0, 1.0, WorkKind::kForward)), Error);
  EXPECT_THROW(tl.add(iv(0, 2.0, 1.0, WorkKind::kForward)), Error);
}

TEST(Timeline, BusyTimeClipsToWindow) {
  Timeline tl(1);
  tl.add(iv(0, 1.0, 5.0, WorkKind::kForward));
  EXPECT_DOUBLE_EQ(tl.busy_time(0, 0.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(0, 2.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(tl.busy_time(0, 6.0, 8.0), 0.0);
}

TEST(Timeline, UtilizationMatchesHandComputation) {
  // Device 0 busy 50% of [0,4], device 1 busy 25% → mean 37.5%.
  Timeline tl(2);
  tl.add(iv(0, 0.0, 2.0, WorkKind::kForward));
  tl.add(iv(1, 0.0, 1.0, WorkKind::kBackward));
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 4.0), 0.375);
}

TEST(Timeline, P2PDoesNotCountAsBusy) {
  Timeline tl(1);
  tl.add(iv(0, 0.0, 1.0, WorkKind::kP2P));
  tl.add(iv(0, 1.0, 2.0, WorkKind::kForward));
  EXPECT_DOUBLE_EQ(tl.utilization(0.0, 2.0), 0.5);
}

TEST(Timeline, GapsAreTheComplementOfBusyIntervals) {
  Timeline tl(1);
  tl.add(iv(0, 1.0, 2.0, WorkKind::kForward));
  tl.add(iv(0, 4.0, 5.0, WorkKind::kBackward));
  const auto gaps = tl.gaps(0, 0.0, 6.0);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_DOUBLE_EQ(gaps[0].start, 0.0);
  EXPECT_DOUBLE_EQ(gaps[0].end, 1.0);
  EXPECT_DOUBLE_EQ(gaps[1].start, 2.0);
  EXPECT_DOUBLE_EQ(gaps[1].end, 4.0);
  EXPECT_DOUBLE_EQ(gaps[2].start, 5.0);
  EXPECT_DOUBLE_EQ(gaps[2].end, 6.0);
  EXPECT_DOUBLE_EQ(tl.bubble_time(0, 0.0, 6.0), 4.0);
}

TEST(Timeline, GapsPlusBusyCoverWindow) {
  Timeline tl(1);
  tl.add(iv(0, 0.5, 1.5, WorkKind::kForward));
  tl.add(iv(0, 1.5, 2.0, WorkKind::kBackward));
  tl.add(iv(0, 3.0, 4.5, WorkKind::kForward));
  const double window = 6.0;
  EXPECT_NEAR(tl.busy_time(0, 0.0, window) + tl.bubble_time(0, 0.0, window),
              window, 1e-12);
}

TEST(Timeline, AppendShiftedReplicatesSteps) {
  Timeline step(2);
  step.add(iv(0, 0.0, 1.0, WorkKind::kForward));
  step.add(iv(1, 0.5, 1.5, WorkKind::kForward));
  Timeline two(2);
  two.append_shifted(step, 0.0);
  two.append_shifted(step, 2.0);
  EXPECT_EQ(two.device_intervals(0).size(), 2u);
  EXPECT_DOUBLE_EQ(two.device_intervals(0)[1].start, 2.0);
  EXPECT_DOUBLE_EQ(two.makespan(), 3.5);
}

TEST(WorkKind, NamesAndGlyphsAreDistinctivePerKind) {
  EXPECT_STREQ(work_kind_name(WorkKind::kForward), "forward");
  EXPECT_STREQ(work_kind_name(WorkKind::kSyncCurvature), "sync-curvature");
  EXPECT_EQ(work_kind_glyph(WorkKind::kForward), 'F');
  EXPECT_NE(work_kind_glyph(WorkKind::kCurvatureA),
            work_kind_glyph(WorkKind::kCurvatureB));
}

TEST(AsciiGantt, RendersRowsAndGlyphs) {
  Timeline tl(2);
  tl.add(iv(0, 0.0, 5.0, WorkKind::kForward));
  tl.add(iv(1, 5.0, 10.0, WorkKind::kBackward));
  GanttOptions opt;
  opt.width = 10;
  const std::string g = render_ascii_gantt(tl, opt);
  EXPECT_NE(g.find("dev0"), std::string::npos);
  EXPECT_NE(g.find("dev1"), std::string::npos);
  EXPECT_NE(g.find("FFFFF"), std::string::npos);
  EXPECT_NE(g.find("BBBBB"), std::string::npos);
  EXPECT_NE(g.find("legend"), std::string::npos);
}

TEST(AsciiGantt, EmptyTimeline) {
  Timeline tl(1);
  EXPECT_EQ(render_ascii_gantt(tl), "(empty timeline)\n");
}

TEST(ChromeTrace, EmitsOneEventPerInterval) {
  Timeline tl(2);
  tl.add(iv(0, 0.0, 1e-3, WorkKind::kForward));
  tl.add(iv(1, 1e-3, 2e-3, WorkKind::kPrecondition));
  const std::string json = to_chrome_trace_json(tl);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"precondition\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  // Durations are microseconds.
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  Timeline tl(1);
  tl.add(iv(0, 0.0, 1.0, WorkKind::kForward));
  const std::string path = ::testing::TempDir() + "/trace.json";
  write_chrome_trace(tl, path);
  FILE* f = fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  fclose(f);
}

}  // namespace
}  // namespace pf
