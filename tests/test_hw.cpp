// Tests for src/hw: hardware profiles, Table-3 architecture configs, the
// FLOP/byte cost model and the §3.3 memory model.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/hw/cost_model.h"
#include "src/hw/hardware_profile.h"
#include "src/hw/memory_model.h"
#include "src/hw/transformer_config.h"

namespace pf {
namespace {

TEST(HardwareProfile, LookupByName) {
  for (const auto& n : known_hardware_names())
    EXPECT_EQ(hardware_by_name(n).name, n);
  EXPECT_THROW(hardware_by_name("tpu"), Error);
}

TEST(HardwareProfile, RelativeSpeeds) {
  // V100 and RTX3090 are faster than P100 in peak FLOPs (paper Appendix A).
  EXPECT_GT(v100().peak_flops, p100().peak_flops);
  EXPECT_GT(rtx3090().peak_flops, v100().peak_flops);
}

TEST(TransformerConfig, Table3Configurations) {
  const auto base = bert_base();
  EXPECT_EQ(base.d_model, 768u);
  EXPECT_EQ(base.d_ff, 3072u);
  EXPECT_EQ(base.n_heads, 12u);
  EXPECT_EQ(base.seq_len, 128u);
  EXPECT_EQ(base.n_layers, 12u);
  const auto large = bert_large();
  EXPECT_EQ(large.d_model, 1024u);
  EXPECT_EQ(large.d_ff, 4096u);
  EXPECT_EQ(large.n_heads, 16u);
  EXPECT_EQ(large.n_layers, 24u);
  EXPECT_EQ(t5_base().seq_len, 512u);
  EXPECT_EQ(t5_large().seq_len, 512u);
  EXPECT_EQ(opt_125m().seq_len, 2048u);
  EXPECT_EQ(opt_350m().seq_len, 2048u);
}

TEST(TransformerConfig, LookupByNameRoundTrip) {
  for (const auto& n : known_transformer_names())
    EXPECT_EQ(transformer_by_name(n).name, n);
  EXPECT_THROW(transformer_by_name("gpt-17"), Error);
}

TEST(TransformerConfig, SixKfacLinearsPerBlock) {
  const auto ls = bert_base().kfac_linears_per_block();
  ASSERT_EQ(ls.size(), 6u);
  EXPECT_EQ(ls[4].d_in, 768u);   // W1: d_model -> d_ff
  EXPECT_EQ(ls[4].d_out, 3072u);
  EXPECT_EQ(ls[5].d_in, 3072u);  // W2: d_ff -> d_model
  EXPECT_EQ(ls[5].d_out, 768u);
}

TEST(TransformerConfig, ParamsPerBlockMatchesKnownBertBase) {
  // BERT-Base encoder layer ≈ 7.09M parameters.
  const double p = static_cast<double>(bert_base().params_per_block());
  EXPECT_NEAR(p, 7.09e6, 0.05e6);
}

TEST(CostModel, ForwardFlopsMatchClosedForm) {
  const auto cfg = bert_base();
  const double f = CostModel::flops_forward_block(cfg, 32);
  // tokens·(8d² + 4·d·dff + 4·S·d)
  const double tokens = 32.0 * 128.0;
  const double expect =
      tokens * (8.0 * 768 * 768 + 4.0 * 768 * 3072 + 4.0 * 128 * 768);
  EXPECT_DOUBLE_EQ(f, expect);
}

TEST(CostModel, BackwardIsTwiceForward) {
  const auto cfg = bert_large();
  EXPECT_DOUBLE_EQ(CostModel::flops_backward_block(cfg, 8),
                   2.0 * CostModel::flops_forward_block(cfg, 8));
}

TEST(CostModel, BackwardTimeRoughlyTwiceForwardTime) {
  const CostModel cm(p100());
  const StageShape s{bert_base(), 3, 32};
  const double tf = cm.time_forward_stage(s);
  const double tb = cm.time_backward_stage(s);
  EXPECT_GT(tb / tf, 1.6);
  EXPECT_LT(tb / tf, 2.4);
}

TEST(CostModel, RecomputeAddsOneForward) {
  const CostModel cm(p100());
  const StageShape s{bert_base(), 2, 16};
  EXPECT_NEAR(cm.time_backward_stage_recompute(s),
              cm.time_backward_stage(s) + cm.time_forward_stage(s), 1e-12);
}

TEST(CostModel, InversionIndependentOfMicroBatch) {
  const CostModel cm(p100());
  // Inversion cost depends only on factor dimensions (paper §3.3: T_inv is
  // constant regardless of B_micro or D).
  EXPECT_DOUBLE_EQ(cm.time_inversion_block(bert_base()),
                   cm.time_inversion_block(bert_base()));
  const double t_small = cm.time_inversion_factor(768);
  const double t_large = cm.time_inversion_factor(3072);
  EXPECT_GT(t_large, 10.0 * t_small);  // cubic growth
}

TEST(CostModel, CurvatureScalesLinearlyInTokens) {
  const CostModel cm(p100());
  const StageShape s8{bert_base(), 1, 8};
  const StageShape s32{bert_base(), 1, 32};
  const double r = cm.time_curvature_block(s32) / cm.time_curvature_block(s8);
  EXPECT_GT(r, 3.3);  // ~4 modulo fixed kernel overhead
  EXPECT_LT(r, 4.1);
}

TEST(CostModel, CurvatureComparableToForward) {
  // One micro-batch of curvature work is in the same ballpark as a forward
  // pass (the B factor of the wide FFN layer makes it somewhat larger —
  // d_ff² per token vs the GEMM's d·d_ff).
  const CostModel cm(p100());
  const StageShape s{bert_base(), 3, 32};
  const double ratio = cm.time_curvature_block(s) *
                       static_cast<double>(s.blocks) /
                       cm.time_forward_stage(s);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.2);
}

TEST(CostModel, PreconditionSmallRelativeToStep) {
  // Precondition is the only per-step overhead and must be small (paper:
  // ~6.5% of a BERT-Large Chimera step).
  const CostModel cm(p100());
  const StageShape s{bert_large(), 3, 32};
  const double step =
      8.0 * (cm.time_forward_stage(s) + cm.time_backward_stage(s));
  EXPECT_LT(cm.time_precondition_stage(s.cfg, s.blocks) / step, 0.15);
}

TEST(CostModel, AllreduceZeroForSingleDevice) {
  const CostModel cm(p100());
  EXPECT_DOUBLE_EQ(cm.time_allreduce(1e9, 1), 0.0);
  EXPECT_GT(cm.time_allreduce(1e9, 2), 0.0);
}

TEST(CostModel, AllreduceGrowsWithWorldSize) {
  const CostModel cm(p100());
  EXPECT_GT(cm.time_allreduce(1e9, 8), cm.time_allreduce(1e9, 2));
  // But sub-linearly (ring): 2(w-1)/w approaches 2.
  EXPECT_LT(cm.time_allreduce(1e9, 64), 2.0 * 1e9 / p100().link_bandwidth +
                                            200 * p100().link_latency);
}

TEST(CostModel, FasterHardwareIsFaster) {
  const CostModel slow(p100()), fast(v100());
  const StageShape s{bert_base(), 3, 32};
  EXPECT_LT(fast.time_forward_stage(s), slow.time_forward_stage(s));
  EXPECT_LT(fast.time_inversion_block(s.cfg), slow.time_inversion_block(s.cfg));
}

TEST(MemoryModel, CurvatureConstantInMicroBatch) {
  MemoryModelInput a{bert_base(), 1, 1, 8, 4, false};
  MemoryModelInput b{bert_base(), 1, 1, 64, 4, false};
  EXPECT_DOUBLE_EQ(model_memory(a).curv_plus_inv,
                   model_memory(b).curv_plus_inv);
}

TEST(MemoryModel, ActivationsScaleWithMicroBatchAndCount) {
  MemoryModelInput a{bert_base(), 1, 1, 8, 4, false};
  MemoryModelInput b = a;
  b.b_micro = 16;
  EXPECT_NEAR(model_memory(b).activations / model_memory(a).activations, 2.0,
              1e-9);
  MemoryModelInput c = a;
  c.n_micro = 8;
  EXPECT_NEAR(model_memory(c).activations / model_memory(a).activations, 2.0,
              1e-9);
}

TEST(MemoryModel, RecomputationCutsActivationMemory) {
  MemoryModelInput full{bert_base(), 1, 1, 32, 16, false};
  MemoryModelInput r = full;
  r.recompute = true;
  EXPECT_LT(model_memory(r).activations,
            0.25 * model_memory(full).activations);
  // Everything else unchanged.
  EXPECT_DOUBLE_EQ(model_memory(r).curv_plus_inv,
                   model_memory(full).curv_plus_inv);
}

TEST(MemoryModel, BertBaseStageFitsP100) {
  // The paper trains BERT-Base with B=32 micro-batches on 16 GB P100s.
  MemoryModelInput in{bert_base(), 3, 1, 32, 4, false};
  EXPECT_LT(model_memory(in).total(), p100().memory_capacity);
}

TEST(MemoryModel, KfacFactorBytesMatchShapeSum) {
  // 10 factors of d² plus 2 of dff², fp32.
  const double expect =
      (10.0 * 768 * 768 + 2.0 * 3072 * 3072) * 4.0;
  EXPECT_DOUBLE_EQ(kfac_factor_bytes(bert_base(), 1), expect);
}

// Property sweep across all Table-3 architectures.
class ArchSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchSweepTest, CostsArePositiveAndOrdered) {
  const auto cfg = transformer_by_name(GetParam());
  const CostModel cm(p100());
  const StageShape s{cfg, 1, 8};
  EXPECT_GT(cm.time_forward_stage(s), 0.0);
  EXPECT_GT(cm.time_backward_stage(s), cm.time_forward_stage(s));
  EXPECT_GT(cm.time_curvature_block(s), 0.0);
  EXPECT_GT(cm.time_inversion_block(cfg), 0.0);
  EXPECT_GT(cm.time_precondition_stage(cfg, 1), 0.0);
}

TEST_P(ArchSweepTest, LongerSequencesRaiseComputeNotInversion) {
  const auto cfg = transformer_by_name(GetParam());
  const CostModel cm(p100());
  TransformerConfig twice = cfg;
  twice.seq_len *= 2;
  const StageShape s1{cfg, 1, 4};
  const StageShape s2{twice, 1, 4};
  EXPECT_GT(cm.time_forward_stage(s2), 1.8 * cm.time_forward_stage(s1));
  EXPECT_DOUBLE_EQ(cm.time_inversion_block(twice),
                   cm.time_inversion_block(cfg));
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchSweepTest,
                         ::testing::ValuesIn(known_transformer_names()));

}  // namespace
}  // namespace pf
