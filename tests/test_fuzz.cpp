// Randomized property tests ("fuzz") over the simulator and the bubble
// assigner: for hundreds of random configurations, structural invariants
// must hold — no overlap, dependencies respected, work conserved, all tasks
// placed, utilization consistent with busy-time accounting.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/bubble_assigner.h"
#include "src/pipeline/chimera.h"
#include "src/pipeline/gpipe.h"
#include "src/pipeline/interleaved_1f1b.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/schedule_registry.h"
#include "src/pipeline/simulator.h"

namespace pf {
namespace {

ScheduleSpec random_schedule(Rng& rng) {
  const int kind = static_cast<int>(rng.uniform_int(4));
  switch (kind) {
    case 0: {
      const int d = 2 + static_cast<int>(rng.uniform_int(7));
      const int n = 1 + static_cast<int>(rng.uniform_int(12));
      return make_gpipe(d, n);
    }
    case 1: {
      const int d = 2 + static_cast<int>(rng.uniform_int(7));
      const int n = 1 + static_cast<int>(rng.uniform_int(12));
      return make_1f1b(d, n);
    }
    case 2: {
      const int d = 2 * (1 + static_cast<int>(rng.uniform_int(4)));
      const int n = 2 * (1 + static_cast<int>(rng.uniform_int(6)));
      return make_chimera(d, n);
    }
    default: {
      const int d = 2 + static_cast<int>(rng.uniform_int(4));
      const int v = 1 + static_cast<int>(rng.uniform_int(3));
      const int n = 1 + static_cast<int>(rng.uniform_int(8));
      return make_interleaved_1f1b(d, v, n);
    }
  }
}

StepCosts random_costs(Rng& rng, int n_stages) {
  StepCosts c;
  c.t_forward = rng.uniform(0.2, 3.0);
  c.t_backward = c.t_forward * rng.uniform(1.0, 3.0);
  if (rng.bernoulli(0.3)) c.t_p2p = rng.uniform(0.0, 0.2);
  if (rng.bernoulli(0.3)) c.t_sync_grad = rng.uniform(0.0, 0.5);
  if (rng.bernoulli(0.3)) c.t_precondition = rng.uniform(0.0, 0.5);
  if (rng.bernoulli(0.3)) c.t_optimizer = rng.uniform(0.0, 0.5);
  if (rng.bernoulli(0.25)) {
    for (int s = 0; s < n_stages; ++s)
      c.stage_cost_scale.push_back(rng.uniform(0.5, 2.0));
  }
  return c;
}

TEST(SimulatorFuzz, InvariantsHoldForRandomConfigurations) {
  Rng rng(20260612);
  for (int trial = 0; trial < 120; ++trial) {
    const auto spec = random_schedule(rng);
    const auto costs = random_costs(rng, spec.n_stages);
    const auto res = simulate_step(spec, costs);

    // 1. Every op executed exactly once (Timeline::add already rejects
    //    overlap on a device).
    std::size_t executed = 0;
    for (const auto& prog : res.realized_programs) executed += prog.size();
    ASSERT_EQ(executed, spec.all_ops().size())
        << spec.name << " trial " << trial;

    // 2. Dependencies respected.
    for (const auto& op : spec.all_ops()) {
      const double start = res.op_start(op);
      if (op.type == OpType::kForward) {
        if (op.stage > 0) {
          ASSERT_GE(start + 1e-9,
                    res.op_end({OpType::kForward, op.pipeline, op.stage - 1,
                                op.micro}) +
                        costs.t_p2p);
        }
      } else {
        ASSERT_GE(start + 1e-9, res.op_end({OpType::kForward, op.pipeline,
                                            op.stage, op.micro}));
        if (op.stage < spec.n_stages - 1) {
          ASSERT_GE(start + 1e-9,
                    res.op_end({OpType::kBackward, op.pipeline, op.stage + 1,
                                op.micro}) +
                        costs.t_p2p);
        }
      }
    }

    // 3. Work conservation: per-device forward/backward interval time
    //    equals the sum of the op durations (tail work like sync-grad may
    //    overlap the pipeline window on early-finishing devices, so count
    //    only pipeline kinds).
    for (int dev = 0; dev < spec.n_devices; ++dev) {
      double expected = 0.0;
      for (const auto& op :
           res.realized_programs[static_cast<std::size_t>(dev)]) {
        expected += op.type == OpType::kForward
                        ? costs.forward_cost(op.stage)
                        : costs.backward_cost(op.stage);
      }
      double busy = 0.0;
      for (const auto& iv :
           res.timeline.device_intervals(static_cast<std::size_t>(dev)))
        if (iv.kind == WorkKind::kForward || iv.kind == WorkKind::kBackward)
          busy += iv.duration();
      ASSERT_NEAR(busy, expected, 1e-6) << spec.name << " dev " << dev;
    }

    // 4. Utilization in (0, 1].
    const double util =
        res.timeline.utilization(0.0, res.pipe_makespan);
    ASSERT_GT(util, 0.0);
    ASSERT_LE(util, 1.0 + 1e-9);

    // 5. Step tail extends (never shrinks) the step.
    ASSERT_GE(res.step_time, res.pipe_makespan - 1e-12);
  }
}

TEST(AssignerFuzz, RandomTaskSetsAlwaysPlaceCompletely) {
  Rng rng(777);
  for (int trial = 0; trial < 80; ++trial) {
    // Random base step: one device pattern replicated.
    const std::size_t n_dev = 1 + rng.uniform_int(4);
    Timeline base(n_dev);
    const double step_time = rng.uniform(4.0, 10.0);
    // Leave a guaranteed >= 2.0s trailing gap per step so every
    // non-splittable task (capped below 2.0) has a feasible home.
    for (std::size_t d = 0; d < n_dev; ++d) {
      double t = rng.uniform(0.0, 1.0);
      while (t < step_time - 3.5) {
        const double len = rng.uniform(0.3, 1.5);
        const double end = std::min(t + len, step_time - 2.0);
        base.add({.device = d, .start = t, .end = end,
                  .kind = WorkKind::kForward});
        t = end + rng.uniform(0.2, 1.2);
      }
    }

    // Random task DAG: chains of 1-3 tasks per root.
    std::vector<BubbleTask> tasks;
    const std::size_t n_roots = 1 + rng.uniform_int(12);
    for (std::size_t r = 0; r < n_roots; ++r) {
      const std::size_t dev = rng.uniform_int(n_dev);
      std::size_t prev = SIZE_MAX;
      const std::size_t chain = 1 + rng.uniform_int(3);
      for (std::size_t k = 0; k < chain; ++k) {
        BubbleTask t;
        t.id = tasks.size();
        t.device = dev;
        t.kind = WorkKind::kCurvatureA;
        t.splittable = rng.bernoulli(0.7);
        // Splittable work can be arbitrarily large; atomic work must fit
        // the guaranteed 2.0s trailing gap.
        t.duration =
            t.splittable ? rng.uniform(0.05, 4.0) : rng.uniform(0.05, 1.9);
        t.earliest_start = rng.uniform(0.0, step_time);
        t.min_chunk = 0.01;
        if (prev != SIZE_MAX) t.deps.push_back(prev);
        prev = t.id;
        tasks.push_back(std::move(t));
      }
    }

    AssignOptions opts;
    opts.max_steps = 512;
    const auto res = assign_to_bubbles(base, step_time, tasks, opts);

    // Every task finished after its readiness and its deps.
    double total_placed = 0.0;
    for (const auto& t : tasks) {
      ASSERT_TRUE(std::isfinite(res.task_end[t.id]));
      ASSERT_GE(res.task_end[t.id], t.earliest_start + t.duration - 1e-9);
      for (auto dep : t.deps)
        ASSERT_GE(res.task_end[t.id], res.task_end[dep] + t.duration - 1e-9);
      total_placed += t.duration;
    }

    // Busy-time accounting: the filled schedule carries exactly the base
    // work × steps_used plus every placed task second (tasks ending at the
    // window boundary may spill past it, hence ≤ with small slack).
    double base_busy = 0.0;
    for (std::size_t d = 0; d < n_dev; ++d)
      base_busy += base.busy_time(d, 0.0, step_time);
    double filled_busy = 0.0;
    for (std::size_t d = 0; d < n_dev; ++d)
      filled_busy += res.schedule.busy_time(d, 0.0, res.window);
    const double expected =
        base_busy * res.steps_used + total_placed;
    ASSERT_LE(filled_busy, expected + 1e-6);
    ASSERT_GE(filled_busy, base_busy * res.steps_used - 1e-6);
  }
}

TEST(RegistryFuzz, MalformedNamesAlwaysThrowAndListRegisteredSchedules) {
  Rng rng(424242);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "-_ .:/\\\t\n\"'{}";
  std::vector<std::string> names;
  // Random garbage of every length, including empty.
  for (int trial = 0; trial < 60; ++trial) {
    std::string name;
    const std::size_t len = rng.uniform_int(24);
    for (std::size_t i = 0; i < len; ++i)
      name += alphabet[rng.uniform_int(alphabet.size())];
    names.push_back(name);
  }
  // Near-misses of registered names: case flips, suffixes, whitespace.
  for (const auto& real : list_schedules()) {
    std::string upper = real;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    names.push_back(upper);
    names.push_back(real + " ");
    names.push_back(" " + real);
    names.push_back(real + "2");
    names.push_back(real.substr(0, real.size() - 1));
  }
  ScheduleParams params;
  for (const auto& name : names) {
    if (schedule_registered(name)) continue;  // e.g. "1f1b" from a substr
    try {
      build_schedule(name, params);
      FAIL() << "expected pf::Error for \"" << name << "\"";
    } catch (const Error& e) {
      // The error must point the caller at the registered names.
      const std::string what = e.what();
      EXPECT_NE(what.find("unknown schedule"), std::string::npos) << name;
      EXPECT_NE(what.find("registered:"), std::string::npos) << name;
      EXPECT_NE(what.find("chimera"), std::string::npos) << name;
    }
  }
}

TEST(AssignerFuzz, UtilizationNeverDecreases) {
  Rng rng(31337);
  for (int trial = 0; trial < 40; ++trial) {
    Timeline base(2);
    base.add({.device = 0, .start = 0.0, .end = 1.0,
              .kind = WorkKind::kForward});
    base.add({.device = 1, .start = 0.5, .end = 1.5,
              .kind = WorkKind::kBackward});
    std::vector<BubbleTask> tasks;
    const std::size_t n = 1 + rng.uniform_int(6);
    for (std::size_t i = 0; i < n; ++i) {
      BubbleTask t;
      t.id = i;
      t.device = rng.uniform_int(2);
      t.duration = rng.uniform(0.1, 1.0);
      tasks.push_back(std::move(t));
    }
    const auto res = assign_to_bubbles(base, 2.0, tasks);
    ASSERT_GE(res.utilization_after, res.utilization_before - 1e-12);
  }
}

}  // namespace
}  // namespace pf
