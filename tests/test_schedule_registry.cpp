// Tests for src/pipeline/schedule_registry: the traits/factory registry that
// is the library's single name-based schedule dispatch site.
//
// Covers: built-in enumeration, traits facts (Table 1 coefficients,
// ownership, sync multipliers), parameter-constraint enforcement with
// name-listing errors, a (stages × micros) property grid over every
// registered schedule, traits-vs-simulator critical-path agreement, and the
// one-file recipe for registering a custom schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/common/check.h"
#include "src/pipeline/chimera.h"
#include "src/pipeline/gpipe.h"
#include "src/pipeline/one_f_one_b.h"
#include "src/pipeline/schedule_registry.h"
#include "src/pipeline/simulator.h"

namespace pf {
namespace {

ScheduleParams params(int stages, int micros) {
  ScheduleParams p;
  p.n_stages = stages;
  p.n_micro = micros;
  return p;
}

TEST(ScheduleRegistry, ListsBuiltinsSorted) {
  const auto names = list_schedules();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"gpipe", "1f1b", "chimera", "interleaved-1f1b"}) {
    EXPECT_TRUE(schedule_registered(expected)) << expected;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(ScheduleRegistry, TraitsMatchTable1AndOwnership) {
  const auto& gpipe = traits_of("gpipe");
  EXPECT_EQ(gpipe.n_pipelines, 1);
  EXPECT_EQ(gpipe.stages_per_device_for(params(4, 8)), 1);
  EXPECT_EQ(gpipe.grad_sync_world_multiplier, 1);
  EXPECT_TRUE(gpipe.flush);
  EXPECT_FALSE(gpipe.dynamic_order);
  // C_f = C_b = N + D - 1.
  EXPECT_DOUBLE_EQ(gpipe.critical_path_forwards(params(4, 8)), 11.0);
  EXPECT_DOUBLE_EQ(gpipe.critical_path_backwards(params(4, 8)), 11.0);
  EXPECT_DOUBLE_EQ(gpipe.useful_ops_per_micro(params(4, 8)), 1.0);

  // 1F1B shares the flush closed form.
  const auto& ofob = traits_of("1f1b");
  EXPECT_DOUBLE_EQ(ofob.critical_path_forwards(params(4, 8)), 11.0);
  EXPECT_DOUBLE_EQ(ofob.critical_path_backwards(params(4, 8)), 11.0);

  const auto& chimera = traits_of("chimera");
  EXPECT_EQ(chimera.n_pipelines, 2);
  EXPECT_EQ(chimera.stages_per_device_for(params(8, 8)), 2);
  EXPECT_EQ(chimera.grad_sync_world_multiplier, 2);
  EXPECT_TRUE(chimera.dynamic_order);
  // C_f = N, C_b = N + D - 2.
  EXPECT_DOUBLE_EQ(chimera.critical_path_forwards(params(8, 8)), 8.0);
  EXPECT_DOUBLE_EQ(chimera.critical_path_backwards(params(8, 8)), 14.0);
  // Two stages over two pipelines: one op per micro-batch per device.
  EXPECT_DOUBLE_EQ(chimera.useful_ops_per_micro(params(8, 8)), 1.0);

  const auto& inter = traits_of("interleaved-1f1b");
  EXPECT_EQ(inter.n_pipelines, 1);
  auto p = params(4, 8);
  p.virtual_chunks = 3;
  EXPECT_EQ(inter.stages_per_device_for(p), 3);
  // C_f = C_b = V·N + D - 1 in per-chunk op times.
  EXPECT_DOUBLE_EQ(inter.critical_path_forwards(p), 27.0);
  EXPECT_DOUBLE_EQ(inter.useful_ops_per_micro(p), 3.0);
  // The model is cut into D·V virtual stages; D for everything else.
  EXPECT_EQ(inter.model_stages(p), 12);
  EXPECT_EQ(gpipe.model_stages(p), 4);
  EXPECT_EQ(chimera.model_stages(params(8, 8)), 8);
}

TEST(ScheduleRegistry, BuildMatchesLegacyFactories) {
  const auto gr = build_schedule("gpipe", params(4, 8));
  const auto gl = make_gpipe(4, 8);
  EXPECT_EQ(gr.name, gl.name);
  EXPECT_EQ(gr.programs, gl.programs);

  const auto fr = build_schedule("1f1b", params(4, 8));
  const auto fl = make_1f1b(4, 8);
  EXPECT_EQ(fr.programs, fl.programs);

  const auto cr = build_schedule("chimera", params(8, 8));
  const auto cl = make_chimera(8, 8);
  EXPECT_EQ(cr.stage_to_device, cl.stage_to_device);
  EXPECT_EQ(cr.micros_of_pipeline, cl.micros_of_pipeline);
  EXPECT_TRUE(cr.dynamic_order);
}

TEST(ScheduleRegistry, UnknownNameErrorListsRegisteredSchedules) {
  try {
    build_schedule("pipedream", params(4, 4));
    FAIL() << "expected pf::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown schedule: pipedream"), std::string::npos);
    EXPECT_NE(what.find("registered:"), std::string::npos);
    for (const auto& name : list_schedules())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
  EXPECT_THROW(traits_of(""), Error);
}

TEST(ScheduleRegistry, ConstraintsEnforcedBeforeTheFactoryRuns) {
  // Chimera: even stages, even micros, minimums of 2.
  EXPECT_THROW(build_schedule("chimera", params(3, 4)), Error);
  EXPECT_THROW(build_schedule("chimera", params(4, 5)), Error);
  EXPECT_THROW(build_schedule("chimera", params(4, 0)), Error);
  try {
    build_schedule("chimera", params(3, 4));
    FAIL() << "expected pf::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("even number of stages"),
              std::string::npos);
  }
  // Interleaved: at least one virtual chunk.
  auto p = params(4, 4);
  p.virtual_chunks = 0;
  EXPECT_THROW(build_schedule("interleaved-1f1b", p), Error);
}

TEST(ScheduleRegistry, Chimera4TraitsAndConstraints) {
  ASSERT_TRUE(schedule_registered("chimera-4"));
  const auto& t = traits_of("chimera-4");
  EXPECT_EQ(t.n_pipelines, 4);
  EXPECT_EQ(t.stages_per_device_for(params(8, 8)), 4);
  EXPECT_EQ(t.grad_sync_world_multiplier, 4);
  EXPECT_TRUE(t.dynamic_order);
  EXPECT_TRUE(t.flush);
  // One contiguous micro chunk per pipeline; pipeline pairs offset by D/2.
  EXPECT_EQ(t.stages_multiple_of, 2);
  EXPECT_EQ(t.micros_multiple_of, 4);
  // Four stages over four pipelines: still one op per micro per device.
  EXPECT_DOUBLE_EQ(t.useful_ops_per_micro(params(8, 8)), 1.0);

  // Divisibility is enforced before the factory runs, with a message that
  // names the constraint.
  EXPECT_THROW(build_schedule("chimera-4", params(8, 6)), Error);
  EXPECT_THROW(build_schedule("chimera-4", params(5, 8)), Error);
  try {
    build_schedule("chimera-4", params(8, 6));
    FAIL() << "expected pf::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("divisible by 4"),
              std::string::npos);
  }
}

TEST(ScheduleRegistry, Chimera4SpecStructureAndP2Equivalence) {
  const auto spec = build_schedule("chimera-4", params(8, 8));
  EXPECT_EQ(spec.name, "chimera-4");
  EXPECT_EQ(spec.n_pipelines, 4);
  ASSERT_EQ(spec.stage_to_device.size(), 4u);
  // Pair 0 is the published Chimera (down: s -> s, up: s -> D-1-s); pair 1
  // is the same pair shifted D/2 devices.
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(spec.stage_to_device[0][static_cast<std::size_t>(s)], s);
    EXPECT_EQ(spec.stage_to_device[1][static_cast<std::size_t>(s)], 7 - s);
    EXPECT_EQ(spec.stage_to_device[2][static_cast<std::size_t>(s)],
              (s + 4) % 8);
    EXPECT_EQ(spec.stage_to_device[3][static_cast<std::size_t>(s)],
              (7 - s + 4) % 8);
  }
  // Each pipeline's stage->device map is a bijection, so every device owns
  // exactly one stage of every pipeline.
  for (const auto& map : spec.stage_to_device) {
    std::vector<int> devices(map.begin(), map.end());
    std::sort(devices.begin(), devices.end());
    for (int d = 0; d < 8; ++d)
      EXPECT_EQ(devices[static_cast<std::size_t>(d)], d);
  }
  // Micros split into 4 contiguous chunks, pipeline order.
  ASSERT_EQ(spec.micros_of_pipeline.size(), 4u);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(spec.micros_of_pipeline[static_cast<std::size_t>(p)],
              (std::vector<int>{2 * p, 2 * p + 1}));

  // n_pipelines = 2 reproduces the published factory exactly.
  const auto two = make_chimera(8, 8, /*n_pipelines=*/2);
  const auto legacy = make_chimera(8, 8);
  EXPECT_EQ(two.name, legacy.name);
  EXPECT_EQ(two.stage_to_device, legacy.stage_to_device);
  EXPECT_EQ(two.micros_of_pipeline, legacy.micros_of_pipeline);
}

TEST(ScheduleRegistry, Chimera4BeatsChimeraInTheGreedySimulator) {
  // More pipelines, smaller per-device chunks, shorter ramps: the greedy
  // executor realizes a strictly smaller makespan at every probed shape.
  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  for (int d : {4, 8}) {
    for (int n : {8, 16}) {
      const auto p = params(d, n);
      const auto r2 = simulate_step(build_schedule("chimera", p), costs);
      const auto r4 = simulate_step(build_schedule("chimera-4", p), costs);
      EXPECT_LT(r4.pipe_makespan, r2.pipe_makespan)
          << "D=" << d << " N=" << n;
    }
  }
}

// Satellite property test: every registered schedule must produce a spec
// that passes ScheduleSpec::validate() across a (stages × micros) grid.
TEST(ScheduleRegistry, EveryScheduleValidatesAcrossStageMicroGrid) {
  for (const auto& name : list_schedules()) {
    const auto& traits = traits_of(name);
    for (int stages : {2, 4, 6, 8}) {
      for (int micros : {2, 4, 6, 8, 12}) {
        const auto p = params(stages, micros);
        // The grid is all-even, so every built-in constraint is satisfied;
        // guard anyway so future registrations with stricter constraints
        // skip instead of failing the grid.
        try {
          traits.check_params(p);
        } catch (const Error&) {
          continue;
        }
        const auto spec = build_schedule(name, p);
        EXPECT_NO_THROW(spec.validate()) << name << " D=" << stages
                                         << " N=" << micros;
        EXPECT_EQ(spec.n_micro, micros) << name;
        EXPECT_GT(spec.n_devices, 0) << name;
        EXPECT_EQ(spec.n_pipelines, traits.n_pipelines) << name;
        // Every device owns what the traits promise.
        for (int d = 0; d < spec.n_devices; ++d)
          EXPECT_EQ(spec.stages_of_device(d).size(),
                    static_cast<std::size_t>(traits.stages_per_device_for(p)))
              << name << " device " << d;
      }
    }
  }
}

// Satellite property test: the traits' closed-form C_f/C_b must match the
// simulator's realized critical path for gpipe, 1f1b and chimera (with the
// closed form's assumed T_b = 2·T_f cost ratio; Chimera's form holds for
// N = k·D).
TEST(ScheduleRegistry, TraitsCriticalPathMatchesSimulator) {
  StepCosts costs;
  costs.t_forward = 1.0;
  costs.t_backward = 2.0;
  for (const std::string name : {"gpipe", "1f1b"}) {
    const auto& traits = traits_of(name);
    for (int d : {2, 4, 8}) {
      for (int n : {2, 4, 8, 16}) {
        const auto p = params(d, n);
        const auto res = simulate_step(build_schedule(name, p), costs);
        const double expect =
            traits.critical_path_forwards(p) * costs.t_forward +
            traits.critical_path_backwards(p) * costs.t_backward;
        EXPECT_NEAR(res.pipe_makespan, expect, 1e-9)
            << name << " D=" << d << " N=" << n;
      }
    }
  }
  // Interleaved 1F1B's C = V·N + D - 1 is the ideal static-order path; the
  // greedy executor realizes at or above it (never below), within ~25% for
  // N >= D.
  const auto& inter = traits_of("interleaved-1f1b");
  for (int d : {2, 4, 8}) {
    for (int k : {1, 2, 3}) {
      for (int v : {2, 3}) {
        auto p = params(d, k * d);
        p.virtual_chunks = v;
        const auto res =
            simulate_step(build_schedule("interleaved-1f1b", p), costs);
        const double expect =
            inter.critical_path_forwards(p) * costs.t_forward +
            inter.critical_path_backwards(p) * costs.t_backward;
        EXPECT_GE(res.pipe_makespan, expect - 1e-9)
            << "interleaved D=" << d << " N=" << k * d << " V=" << v;
        EXPECT_LE(res.pipe_makespan, 1.25 * expect)
            << "interleaved D=" << d << " N=" << k * d << " V=" << v;
      }
    }
  }

  const auto& chimera = traits_of("chimera");
  for (int d : {4, 8, 16}) {
    for (int k : {1, 2, 3}) {
      const auto p = params(d, k * d);
      const auto res = simulate_step(build_schedule("chimera", p), costs);
      const double expect =
          chimera.critical_path_forwards(p) * costs.t_forward +
          chimera.critical_path_backwards(p) * costs.t_backward;
      if (k == 1) {
        // The published schedule: C_f = D forwards, C_b = 2D-2 backwards.
        EXPECT_NEAR(res.pipe_makespan, expect, 1e-9) << "chimera D=" << d;
      } else {
        // For deeper waves (N = k·D, k > 1) the greedy executor's realized
        // path drifts around the closed form in BOTH directions — the
        // greedy order can beat the form (it overlaps the extra waves'
        // fills into the drain) or lose to it (priority inversions between
        // the up and down pipelines). Measured over this exact grid:
        //   D= 4: +3.6% (k=2)  +5.0% (k=3)
        //   D= 8: +8.3% (k=2)  -3.6% (k=3)
        //   D=16: +10.5% (k=2) -1.7% (k=3)
        // Pinned as an explicit asymmetric band with a little headroom:
        // [-5%, +12%]. A tightening of the greedy executor toward the
        // N = k·D ideal would shrink the +12% side, but would also change
        // the realized Chimera programs the runtime's bitwise grids pin —
        // so the band is documented, not "fixed".
        EXPECT_GE(res.pipe_makespan, (1.0 - 0.05) * expect)
            << "chimera D=" << d << " N=" << k * d;
        EXPECT_LE(res.pipe_makespan, (1.0 + 0.12) * expect)
            << "chimera D=" << d << " N=" << k * d;
      }
    }
  }

  // ZB-H1: T_pipe = (N+D-1)·T_f + N·T_b — the deferred W passes fill the
  // 1F1B backward-side bubbles exactly. The closed form is EXACT whenever
  // the pipeline is saturated (N >= D); in the under-filled regime (N < D)
  // there is not enough W work to cover the drain and the realized makespan
  // sits above the closed form (<= ~1.5x observed at D=8, N=2) — a band,
  // like Chimera's deep waves. Either way zb-h1 never loses to 1f1b.
  const auto& zb = traits_of("zb-h1");
  EXPECT_TRUE(zb.split_backward);
  for (int d : {2, 4, 8}) {
    for (int n : {2, 4, 8, 16}) {
      const auto p = params(d, n);
      const auto res = simulate_step(build_schedule("zb-h1", p), costs);
      const double expect = zb.critical_path_forwards(p) * costs.t_forward +
                            zb.critical_path_backwards(p) * costs.t_backward;
      EXPECT_DOUBLE_EQ(zb.critical_path_forwards(p),
                       static_cast<double>(n + d - 1));
      EXPECT_DOUBLE_EQ(zb.critical_path_backwards(p), static_cast<double>(n));
      if (n >= d) {
        EXPECT_NEAR(res.pipe_makespan, expect, 1e-9)
            << "zb-h1 D=" << d << " N=" << n;
      } else {
        EXPECT_GE(res.pipe_makespan, expect - 1e-9)
            << "zb-h1 D=" << d << " N=" << n;
        EXPECT_LE(res.pipe_makespan, 1.5 * expect)
            << "zb-h1 D=" << d << " N=" << n;
      }
    }
  }
}

// The one-file recipe: a factory + traits + register_schedule() makes a new
// schedule a first-class citizen of build_schedule/traits_of/list_schedules.
ScheduleSpec dummy_factory(const ScheduleParams& p) {
  auto spec = make_gpipe(p.n_stages, p.n_micro);
  spec.name = "test-dummy";
  return spec;
}

TEST(ScheduleRegistry, RegisterCustomSchedule) {
  ScheduleTraits t;
  t.name = "test-dummy";
  t.description = "gpipe clone registered by the test suite";
  t.c_f = {1.0, 1.0, -1.0};
  t.c_b = {1.0, 1.0, -1.0};
  // Registration is process-global and permanent; stay idempotent so the
  // suite survives --gtest_repeat.
  if (!schedule_registered("test-dummy")) register_schedule(t, &dummy_factory);

  EXPECT_TRUE(schedule_registered("test-dummy"));
  const auto names = list_schedules();
  EXPECT_NE(std::find(names.begin(), names.end(), "test-dummy"), names.end());
  const auto spec = build_schedule("test-dummy", params(4, 4));
  EXPECT_EQ(spec.name, "test-dummy");
  EXPECT_EQ(spec.programs, make_gpipe(4, 4).programs);
  EXPECT_DOUBLE_EQ(traits_of("test-dummy").critical_path_forwards(
                       params(4, 4)),
                   7.0);

  // Duplicate and malformed registrations are rejected.
  EXPECT_THROW(register_schedule(t, &dummy_factory), Error);
  ScheduleTraits unnamed;
  EXPECT_THROW(register_schedule(unnamed, &dummy_factory), Error);
}

}  // namespace
}  // namespace pf
